#include "geom/clip.h"

#include <algorithm>
#include <cassert>

#include "geom/decompose.h"

namespace ccdb::geom {

namespace {

/// Signed side of `r` relative to the directed line p->q (cross product;
/// > 0 strictly left / inside for a CCW clip ring).
Rational Side(const Point& p, const Point& q, const Point& r) {
  return Cross(p, q, r);
}

/// Intersection of segment (a, b) with the line through p->q, given the
/// (nonzero, opposite-signed) side values of a and b.
Point LineCut(const Point& a, const Point& b, const Rational& side_a,
              const Rational& side_b) {
  Rational t = side_a / (side_a - side_b);
  return a + (b - a) * t;
}

}  // namespace

std::vector<Point> ClipConvex(const std::vector<Point>& subject,
                              const std::vector<Point>& clip) {
  assert(clip.size() >= 3);
  std::vector<Point> output = subject;
  const size_t m = clip.size();
  for (size_t e = 0; e < m && !output.empty(); ++e) {
    const Point& p = clip[e];
    const Point& q = clip[(e + 1) % m];
    std::vector<Point> input = std::move(output);
    output.clear();
    const size_t n = input.size();
    for (size_t i = 0; i < n; ++i) {
      const Point& cur = input[i];
      const Point& next = input[(i + 1) % n];
      Rational side_cur = Side(p, q, cur);
      Rational side_next = Side(p, q, next);
      if (side_cur.Sign() >= 0) {
        output.push_back(cur);
      }
      if ((side_cur.Sign() > 0 && side_next.Sign() < 0) ||
          (side_cur.Sign() < 0 && side_next.Sign() > 0)) {
        output.push_back(LineCut(cur, next, side_cur, side_next));
      }
    }
  }
  // Canonicalize: dedupe, drop collinear vertices, enforce CCW. The hull
  // of the (convex) result is the result itself.
  return ConvexHull(output);
}

namespace {

/// Clips the closed segment to the inside of a convex CCW ring.
/// Returns the surviving parameter interval's endpoints (possibly equal),
/// or nothing.
std::optional<std::pair<Point, Point>> ClipSegmentToConvex(
    const Segment& segment, const std::vector<Point>& ring) {
  // Parametric clipping: point(t) = a + t(b-a), t in [0, 1]; each clip
  // edge imposes side(a) + t*(side(b) - side(a)) >= 0.
  Rational t_lo(0);
  Rational t_hi(1);
  const size_t m = ring.size();
  for (size_t e = 0; e < m; ++e) {
    const Point& p = ring[e];
    const Point& q = ring[(e + 1) % m];
    Rational side_a = Side(p, q, segment.a);
    Rational side_b = Side(p, q, segment.b);
    Rational delta = side_b - side_a;
    if (delta.IsZero()) {
      if (side_a.Sign() < 0) return std::nullopt;  // fully outside
      continue;
    }
    Rational t_cross = -side_a / delta;
    if (delta.Sign() > 0) {
      // Entering: t >= t_cross.
      if (t_cross > t_lo) t_lo = t_cross;
    } else {
      // Leaving: t <= t_cross.
      if (t_cross < t_hi) t_hi = t_cross;
    }
    if (t_lo > t_hi) return std::nullopt;
  }
  Point lo = segment.a + (segment.b - segment.a) * t_lo;
  Point hi = segment.a + (segment.b - segment.a) * t_hi;
  return std::make_pair(std::move(lo), std::move(hi));
}

/// Intersection of two closed segments as a region (point or segment).
std::optional<ConvexRegion> IntersectSegments(const Segment& s,
                                              const Segment& t) {
  if (!SegmentsIntersect(s, t)) return std::nullopt;
  Point ds = s.b - s.a;
  Point dt = t.b - t.a;
  Rational denom = ds.x * dt.y - ds.y * dt.x;
  if (!denom.IsZero()) {
    // Proper (single-point) intersection.
    Point diff = t.a - s.a;
    Rational u = (diff.x * dt.y - diff.y * dt.x) / denom;
    return ConvexRegion::MakePoint(s.a + ds * u);
  }
  // Collinear overlap: order the four endpoints along the line and take
  // the middle two.
  auto key = [&](const Point& p) {
    // Project onto the dominant axis of ds (or dt if s degenerate).
    Point d = s.IsDegenerate() ? dt : ds;
    return (d.x.Abs() >= d.y.Abs()) ? p.x : p.y;
  };
  Point lo_s = key(s.a) <= key(s.b) ? s.a : s.b;
  Point hi_s = key(s.a) <= key(s.b) ? s.b : s.a;
  Point lo_t = key(t.a) <= key(t.b) ? t.a : t.b;
  Point hi_t = key(t.a) <= key(t.b) ? t.b : t.a;
  Point lo = key(lo_s) >= key(lo_t) ? lo_s : lo_t;
  Point hi = key(hi_s) <= key(hi_t) ? hi_s : hi_t;
  if (lo == hi) return ConvexRegion::MakePoint(lo);
  return ConvexRegion::MakeSegment(Segment(lo, hi));
}

std::optional<ConvexRegion> FromClippedRing(std::vector<Point> ring) {
  if (ring.empty()) return std::nullopt;
  if (ring.size() == 1) return ConvexRegion::MakePoint(ring[0]);
  if (ring.size() == 2) {
    return ConvexRegion::MakeSegment(Segment(ring[0], ring[1]));
  }
  auto polygon = Polygon::Make(std::move(ring));
  if (!polygon.ok()) return std::nullopt;  // fully degenerate
  return ConvexRegion::MakePolygon(std::move(polygon).value());
}

}  // namespace

std::optional<ConvexRegion> IntersectRegions(const ConvexRegion& a,
                                             const ConvexRegion& b) {
  using Kind = ConvexRegion::Kind;
  // Normalize order: point <= segment <= polygon.
  if (static_cast<int>(a.kind()) > static_cast<int>(b.kind())) {
    return IntersectRegions(b, a);
  }
  switch (a.kind()) {
    case Kind::kPoint:
      if (b.Contains(a.point())) return a;
      return std::nullopt;
    case Kind::kSegment:
      if (b.kind() == Kind::kSegment) {
        return IntersectSegments(a.segment(), b.segment());
      }
      // segment ∧ polygon.
      {
        auto clipped =
            ClipSegmentToConvex(a.segment(), b.polygon().vertices());
        if (!clipped) return std::nullopt;
        if (clipped->first == clipped->second) {
          return ConvexRegion::MakePoint(clipped->first);
        }
        return ConvexRegion::MakeSegment(
            Segment(clipped->first, clipped->second));
      }
    case Kind::kPolygon:
      return FromClippedRing(
          ClipConvex(a.polygon().vertices(), b.polygon().vertices()));
  }
  return std::nullopt;
}

Rational IntersectionArea(const std::vector<Point>& a,
                          const std::vector<Point>& b) {
  std::vector<Point> region = ClipConvex(a, b);
  if (region.size() < 3) return Rational(0);
  return TwiceSignedArea(region) * Rational(1, 2);
}

}  // namespace ccdb::geom
