#include "geom/point.h"

namespace ccdb::geom {

Rational Cross(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

Rational Dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

int Orientation(const Point& o, const Point& a, const Point& b) {
  return Cross(o, a, b).Sign();
}

Rational SquaredDistance(const Point& a, const Point& b) {
  Rational dx = a.x - b.x;
  Rational dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace ccdb::geom
