#ifndef CCDB_GEOM_POLYGON_H_
#define CCDB_GEOM_POLYGON_H_

/// \file polygon.h
/// Simple polygons and polylines with exact predicates.
///
/// Non-linear spatial features (lakes, towns, temperature zones — §6.2 of
/// the paper) are regions bounded by a simple (possibly concave) ring.
/// The constraint data model requires decomposing such a region into convex
/// polyhedra (one constraint tuple each); `polygon.h` supplies the region
/// type and `decompose.h` the decomposition.

#include <string>
#include <vector>

#include "geom/segment.h"
#include "util/status.h"

namespace ccdb::geom {

/// An open chain of vertices (e.g. a road or hurricane track).
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t NumSegments() const {
    return vertices_.size() < 2 ? 0 : vertices_.size() - 1;
  }
  Segment SegmentAt(size_t i) const {
    return Segment(vertices_[i], vertices_[i + 1]);
  }

  Box BoundingBox() const;

  /// Euclidean length (double: lengths are irrational in general).
  double Length() const;

  std::string ToString() const;

 private:
  std::vector<Point> vertices_;
};

/// A simple polygon stored as a counter-clockwise ring (no repeated last
/// vertex). Use `Make` to validate and normalize input.
class Polygon {
 public:
  /// Validates: >= 3 vertices, non-zero area, no self-intersection, no
  /// repeated vertices. Reverses clockwise input into CCW order.
  static Result<Polygon> Make(std::vector<Point> ring);

  /// The convenience axis-aligned rectangle polygon.
  static Polygon Rectangle(const Box& box);

  const std::vector<Point>& vertices() const { return ring_; }
  size_t size() const { return ring_.size(); }

  Segment EdgeAt(size_t i) const {
    return Segment(ring_[i], ring_[(i + 1) % ring_.size()]);
  }

  /// Exact area (positive: the ring is CCW by construction).
  Rational Area() const;

  Box BoundingBox() const;

  /// True when every vertex is convex (the constraint representation of a
  /// convex polygon is a single conjunction of half-planes).
  bool IsConvex() const;

  /// Exact point-in-polygon (boundary counts as inside).
  bool Contains(const Point& p) const;

  std::string ToString() const;

 private:
  explicit Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {}

  std::vector<Point> ring_;  // CCW, no duplicate closing vertex
};

/// Exact signed area ×2 of a ring (positive = CCW).
Rational TwiceSignedArea(const std::vector<Point>& ring);

/// Exact squared distances between features (0 on overlap/containment).
Rational SquaredDistance(const Point& p, const Polygon& poly);
Rational SquaredDistance(const Segment& s, const Polygon& poly);
Rational SquaredDistance(const Polygon& a, const Polygon& b);
Rational SquaredDistance(const Polyline& a, const Polyline& b);
Rational SquaredDistance(const Polyline& line, const Polygon& poly);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_POLYGON_H_
