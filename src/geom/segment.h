#ifndef CCDB_GEOM_SEGMENT_H_
#define CCDB_GEOM_SEGMENT_H_

/// \file segment.h
/// Exact line segments and segment predicates.
///
/// Linear spatial features (roads, rivers, hurricane trajectories — §6.2 of
/// the paper) are chains of segments; the constraint representation of one
/// segment is "the line collinear with it plus its two endpoint bounds".
/// All predicates here are exact (rational arithmetic, no epsilons).

#include <string>

#include "geom/box.h"
#include "geom/point.h"

namespace ccdb::geom {

/// A closed line segment from `a` to `b` (possibly degenerate: a == b).
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(Point a_in, Point b_in) : a(std::move(a_in)), b(std::move(b_in)) {}

  bool IsDegenerate() const { return a == b; }

  Box BoundingBox() const { return Box::FromCorners(a, b); }

  /// True if `p` lies on the closed segment (exact).
  bool Contains(const Point& p) const;

  std::string ToString() const {
    return a.ToString() + "-" + b.ToString();
  }
};

/// True if the closed segments share at least one point (handles all
/// collinear/touching/degenerate cases exactly).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// Exact squared distance from a point to a closed segment.
Rational SquaredDistance(const Point& p, const Segment& s);

/// Exact squared distance between two closed segments (0 if intersecting).
Rational SquaredDistance(const Segment& s, const Segment& t);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_SEGMENT_H_
