#ifndef CCDB_GEOM_CONVERT_H_
#define CCDB_GEOM_CONVERT_H_

/// \file convert.h
/// Lossless conversion between the constraint and vector representations.
///
/// §6 of the paper observes that the CDB middle layer is representation-
/// neutral: a spatial extent can be stored either as linear constraints or
/// as vector geometry, and a practical system should support both plus
/// conversions. CCDB's conversions are exact in both directions for closed
/// bounded regions:
///
///   geometry → constraints:  convex pieces become conjunctions of
///       half-plane constraints; concave polygons are decomposed first
///       (one constraint tuple per convex piece); a segment becomes the
///       paper's "collinear line + two endpoint bounds" triple.
///   constraints → geometry:  2-D vertex enumeration (intersect boundary
///       lines pairwise, keep feasible points, hull) classifies each
///       conjunction as a point, a segment, or a convex polygon.
///
/// Strict inequalities are converted to their topological closure; for the
/// spatial workloads of the paper (closed regions digitized from maps) this
/// is an identity, and it never changes distances between regions.

#include <optional>
#include <string>
#include <vector>

#include "constraint/conjunction.h"
#include "geom/decompose.h"
#include "geom/polygon.h"
#include "util/status.h"

namespace ccdb::geom {

/// A bounded convex region: a point, a segment, or a convex polygon.
class ConvexRegion {
 public:
  enum class Kind { kPoint, kSegment, kPolygon };

  static ConvexRegion MakePoint(Point p);
  static ConvexRegion MakeSegment(Segment s);
  static ConvexRegion MakePolygon(Polygon p);

  Kind kind() const { return kind_; }
  const Point& point() const { return point_; }
  const Segment& segment() const { return segment_; }
  const Polygon& polygon() const { return *polygon_; }

  Box BoundingBox() const;
  bool Contains(const Point& p) const;
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kPoint;
  Point point_;
  Segment segment_;
  std::optional<Polygon> polygon_;
};

/// Exact squared distance between two convex regions (0 on overlap).
Rational SquaredDistance(const ConvexRegion& a, const ConvexRegion& b);

/// Half-plane constraints of a convex CCW ring over variables (xvar, yvar):
/// one `ax + by <= c` per edge, interior on the left.
Conjunction ConvexRingToConjunction(const std::vector<Point>& ring,
                                    const std::string& xvar,
                                    const std::string& yvar);

/// Constraint tuples of a simple polygon: convex decomposition, one
/// conjunction per piece (§6.2's "union of convex polyhedra").
std::vector<Conjunction> PolygonToConstraintTuples(const Polygon& polygon,
                                                   const std::string& xvar,
                                                   const std::string& yvar);

/// Constraint tuple of one segment: the collinear-line equality plus the
/// endpoint bounding constraints (the paper's three-constraint encoding).
Conjunction SegmentToConjunction(const Segment& segment,
                                 const std::string& xvar,
                                 const std::string& yvar);

/// One constraint tuple per segment of the polyline.
std::vector<Conjunction> PolylineToConstraintTuples(const Polyline& line,
                                                    const std::string& xvar,
                                                    const std::string& yvar);

/// Constraint tuple of a single point: two equalities.
Conjunction PointToConjunction(const Point& p, const std::string& xvar,
                               const std::string& yvar);

/// Classifies a satisfiable conjunction over {xvar, yvar} as a bounded
/// convex region by exact vertex enumeration. Fails with:
///  - kInvalidArgument if the conjunction mentions other variables or is
///    unsatisfiable;
///  - kUnsupported if the solution set is unbounded.
/// Strict inequalities are closed (see file comment).
Result<ConvexRegion> ConjunctionToRegion(const Conjunction& conjunction,
                                         const std::string& xvar,
                                         const std::string& yvar);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_CONVERT_H_
