#ifndef CCDB_GEOM_POINT_H_
#define CCDB_GEOM_POINT_H_

/// \file point.h
/// Exact rational points in the plane.
///
/// §6 of the paper argues the CDB framework's middle layer is
/// representation-neutral and that spatial data is often better served by a
/// *vector* (geometric) representation than by constraints. CCDB's geometry
/// substrate is built on exact rational coordinates so conversions between
/// the two representations are lossless, preserving the closure principle.

#include <string>

#include "num/rational.h"

namespace ccdb::geom {

/// A point (x, y) with exact rational coordinates.
struct Point {
  Rational x;
  Rational y;

  Point() = default;
  Point(Rational x_in, Rational y_in)
      : x(std::move(x_in)), y(std::move(y_in)) {}
  Point(int64_t x_in, int64_t y_in) : x(x_in), y(y_in) {}

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
  bool operator!=(const Point& other) const { return !(*this == other); }
  bool operator<(const Point& other) const {
    int cmp = x.Compare(other.x);
    if (cmp != 0) return cmp < 0;
    return y < other.y;
  }

  Point operator+(const Point& o) const { return Point(x + o.x, y + o.y); }
  Point operator-(const Point& o) const { return Point(x - o.x, y - o.y); }
  Point operator*(const Rational& s) const { return Point(x * s, y * s); }

  std::string ToString() const {
    return "(" + x.ToString() + ", " + y.ToString() + ")";
  }
};

/// 2-D cross product (o->a) × (o->b): positive iff a->b turns left at o.
Rational Cross(const Point& o, const Point& a, const Point& b);

/// Dot product of vectors a and b.
Rational Dot(const Point& a, const Point& b);

/// Orientation of the ordered triple: +1 counter-clockwise, 0 collinear,
/// -1 clockwise. Exact (no epsilon).
int Orientation(const Point& o, const Point& a, const Point& b);

/// Squared Euclidean distance (exact; distances themselves need sqrt and
/// are irrational in general, so CCDB compares squared values).
Rational SquaredDistance(const Point& a, const Point& b);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_POINT_H_
