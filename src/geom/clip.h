#ifndef CCDB_GEOM_CLIP_H_
#define CCDB_GEOM_CLIP_H_

/// \file clip.h
/// Exact intersection of convex regions (Sutherland–Hodgman clipping).
///
/// §6's representation-neutrality cuts both ways: the intersection of two
/// spatial extents can be computed in the constraint representation (CQA
/// natural join conjoins the stores) or in the vector representation
/// (polygon clipping). CCDB implements both and cross-validates them in
/// tests — same input regions, same output region, two algorithms.
///
/// `ClipConvex` clips a convex CCW subject ring against a convex CCW clip
/// ring entirely in rational arithmetic; the result is the exact
/// intersection (possibly empty, a point, a segment, or a polygon).

#include <vector>

#include "geom/convert.h"
#include "geom/polygon.h"

namespace ccdb::geom {

/// Exact intersection of two convex CCW rings. The returned vertex list
/// is the convex intersection region:
///  - empty vector: disjoint interiors and boundaries;
///  - 1 vertex: they touch at a point;
///  - 2 vertices: they share a segment;
///  - >= 3 vertices: a convex polygon (CCW, no collinear vertices).
std::vector<Point> ClipConvex(const std::vector<Point>& subject,
                              const std::vector<Point>& clip);

/// Exact intersection of two convex regions of any kind (point, segment,
/// polygon). Returns the intersection as a ConvexRegion, or nullopt when
/// they do not intersect.
std::optional<ConvexRegion> IntersectRegions(const ConvexRegion& a,
                                             const ConvexRegion& b);

/// Exact area of the intersection of two convex rings (0 for lower-
/// dimensional or empty intersections).
Rational IntersectionArea(const std::vector<Point>& a,
                          const std::vector<Point>& b);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_CLIP_H_
