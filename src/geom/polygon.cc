#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

namespace ccdb::geom {

Box Polyline::BoundingBox() const {
  Box box = Box::Empty();
  for (const Point& p : vertices_) box = box.ExpandedBy(Box::FromPoint(p));
  return box;
}

double Polyline::Length() const {
  double total = 0.0;
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    total += std::sqrt(
        geom::SquaredDistance(vertices_[i], vertices_[i + 1]).ToDouble());
  }
  return total;
}

std::string Polyline::ToString() const {
  std::string out = "Polyline[";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i) out += ", ";
    out += vertices_[i].ToString();
  }
  return out + "]";
}

Rational TwiceSignedArea(const std::vector<Point>& ring) {
  Rational sum(0);
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& p = ring[i];
    const Point& q = ring[(i + 1) % n];
    sum += p.x * q.y - q.x * p.y;
  }
  return sum;
}

Result<Polygon> Polygon::Make(std::vector<Point> ring) {
  // Drop a duplicated closing vertex if the caller supplied one.
  if (ring.size() >= 2 && ring.front() == ring.back()) ring.pop_back();
  if (ring.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  for (size_t i = 0; i < ring.size(); ++i) {
    if (ring[i] == ring[(i + 1) % ring.size()]) {
      return Status::InvalidArgument("polygon has repeated adjacent vertices");
    }
  }
  Rational area2 = TwiceSignedArea(ring);
  if (area2.IsZero()) {
    return Status::InvalidArgument("polygon has zero area");
  }
  if (area2.Sign() < 0) std::reverse(ring.begin(), ring.end());

  // Simplicity: non-adjacent edges must not intersect; adjacent edges only
  // at their shared vertex (no spikes — ruled out by the repeated-vertex and
  // collinearity-with-overlap checks below).
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    Segment ei(ring[i], ring[(i + 1) % n]);
    for (size_t j = i + 1; j < n; ++j) {
      Segment ej(ring[j], ring[(j + 1) % n]);
      bool adjacent = (j == i + 1) || (i == 0 && j == n - 1);
      if (adjacent) {
        // Shared endpoint only; a spike would make them overlap collinearly.
        const Point& shared = (j == i + 1) ? ring[j] : ring[0];
        const Point& before = (j == i + 1) ? ring[i] : ring[j];
        const Point& after = (j == i + 1) ? ring[(j + 1) % n] : ring[1];
        if (Orientation(shared, before, after) == 0 &&
            Dot(before - shared, after - shared).Sign() > 0) {
          return Status::InvalidArgument("polygon has a degenerate spike");
        }
        continue;
      }
      if (SegmentsIntersect(ei, ej)) {
        return Status::InvalidArgument("polygon is self-intersecting");
      }
    }
  }
  return Polygon(std::move(ring));
}

Polygon Polygon::Rectangle(const Box& box) {
  std::vector<Point> ring{
      Point(box.x_min, box.y_min), Point(box.x_max, box.y_min),
      Point(box.x_max, box.y_max), Point(box.x_min, box.y_max)};
  return Polygon(std::move(ring));  // already CCW and simple
}

Rational Polygon::Area() const {
  return TwiceSignedArea(ring_) * Rational(1, 2);
}

Box Polygon::BoundingBox() const {
  Box box = Box::Empty();
  for (const Point& p : ring_) box = box.ExpandedBy(Box::FromPoint(p));
  return box;
}

bool Polygon::IsConvex() const {
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    if (Orientation(ring_[i], ring_[(i + 1) % n], ring_[(i + 2) % n]) < 0) {
      return false;
    }
  }
  return true;
}

bool Polygon::Contains(const Point& p) const {
  const size_t n = ring_.size();
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    if (EdgeAt(i).Contains(p)) return true;
  }
  // Exact crossing-number test with a ray in +x direction; the half-open
  // vertex rule (count an edge iff exactly one endpoint is strictly above p)
  // handles ray-through-vertex cases.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    bool a_above = a.y > p.y;
    bool b_above = b.y > p.y;
    if (a_above == b_above) continue;
    // Edge crosses the horizontal line y = p.y. x-coordinate of crossing
    // vs p.x, exactly: sign of (a + t(b-a)).x - p.x with t = (p.y-a.y)/(b.y-a.y).
    Rational dy = b.y - a.y;  // non-zero here
    Rational cross_x_num = a.x * dy + (p.y - a.y) * (b.x - a.x);
    // Compare cross_x_num / dy > p.x without dividing (dy sign matters).
    Rational diff = cross_x_num - p.x * dy;
    if ((dy.Sign() > 0 && diff.Sign() > 0) ||
        (dy.Sign() < 0 && diff.Sign() < 0)) {
      inside = !inside;
    }
  }
  return inside;
}

std::string Polygon::ToString() const {
  std::string out = "Polygon[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i) out += ", ";
    out += ring_[i].ToString();
  }
  return out + "]";
}

Rational SquaredDistance(const Point& p, const Polygon& poly) {
  if (poly.Contains(p)) return Rational(0);
  Rational best = SquaredDistance(p, poly.EdgeAt(0));
  for (size_t i = 1; i < poly.size(); ++i) {
    best = Rational::Min(best, SquaredDistance(p, poly.EdgeAt(i)));
  }
  return best;
}

Rational SquaredDistance(const Segment& s, const Polygon& poly) {
  if (poly.Contains(s.a) || poly.Contains(s.b)) return Rational(0);
  Rational best = SquaredDistance(s, poly.EdgeAt(0));
  for (size_t i = 1; i < poly.size(); ++i) {
    if (best.IsZero()) return best;
    best = Rational::Min(best, SquaredDistance(s, poly.EdgeAt(i)));
  }
  return best;
}

Rational SquaredDistance(const Polygon& a, const Polygon& b) {
  // Containment either way gives distance zero.
  if (a.Contains(b.vertices()[0]) || b.Contains(a.vertices()[0])) {
    return Rational(0);
  }
  Rational best = SquaredDistance(a.EdgeAt(0), b);
  for (size_t i = 1; i < a.size(); ++i) {
    if (best.IsZero()) return best;
    best = Rational::Min(best, SquaredDistance(a.EdgeAt(i), b));
  }
  return best;
}

Rational SquaredDistance(const Polyline& a, const Polyline& b) {
  if (a.vertices().empty() || b.vertices().empty()) return Rational(0);
  if (a.NumSegments() == 0 && b.NumSegments() == 0) {
    return SquaredDistance(a.vertices()[0], b.vertices()[0]);
  }
  Rational best(-1);
  for (size_t i = 0; i < std::max<size_t>(a.NumSegments(), 1); ++i) {
    Segment sa = a.NumSegments() ? a.SegmentAt(i)
                                 : Segment(a.vertices()[0], a.vertices()[0]);
    for (size_t j = 0; j < std::max<size_t>(b.NumSegments(), 1); ++j) {
      Segment sb = b.NumSegments() ? b.SegmentAt(j)
                                   : Segment(b.vertices()[0], b.vertices()[0]);
      Rational d = SquaredDistance(sa, sb);
      if (best.Sign() < 0 || d < best) best = d;
      if (best.IsZero()) return best;
    }
  }
  return best;
}

Rational SquaredDistance(const Polyline& line, const Polygon& poly) {
  if (line.vertices().empty()) return Rational(0);
  if (line.NumSegments() == 0) {
    return SquaredDistance(line.vertices()[0], poly);
  }
  Rational best = SquaredDistance(line.SegmentAt(0), poly);
  for (size_t i = 1; i < line.NumSegments(); ++i) {
    if (best.IsZero()) return best;
    best = Rational::Min(best, SquaredDistance(line.SegmentAt(i), poly));
  }
  return best;
}

}  // namespace ccdb::geom
