#ifndef CCDB_GEOM_DECOMPOSE_H_
#define CCDB_GEOM_DECOMPOSE_H_

/// \file decompose.h
/// Convex decomposition of simple polygons.
///
/// The constraint data model represents a (possibly concave) region as a
/// union of convex polyhedra, one constraint tuple each (§6.2 of the paper).
/// CCDB decomposes with exact ear-clipping triangulation followed by
/// Hertel–Mehlhorn merging, which yields at most 4× the optimal number of
/// convex pieces while staying simple and fully exact.

#include <vector>

#include "geom/polygon.h"

namespace ccdb::geom {

/// Exact ear-clipping triangulation of a simple polygon.
/// Returns triangles as CCW vertex triples covering the polygon exactly.
std::vector<std::vector<Point>> Triangulate(const Polygon& polygon);

/// Convex decomposition: triangulate, then greedily merge triangles across
/// shared diagonals while the union remains convex (Hertel–Mehlhorn).
/// Each returned ring is CCW and convex; their union is the input polygon.
std::vector<std::vector<Point>> DecomposeConvex(const Polygon& polygon);

/// Andrew monotone-chain convex hull. Returns the hull as a CCW ring
/// without collinear interior vertices; a single point or a pair of points
/// is returned as-is (size 1 or 2).
std::vector<Point> ConvexHull(std::vector<Point> points);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_DECOMPOSE_H_
