#ifndef CCDB_INDEX_RSTAR_TREE_H_
#define CCDB_INDEX_RSTAR_TREE_H_

/// \file rstar_tree.h
/// A disk-based R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).
///
/// §5 of the paper argues for joint multidimensional indexing of constraint
/// relations and evaluates R*-trees at dimensions 1 and 2 ("An R* tree was
/// used as the index data structure"). This implementation follows the
/// original algorithm:
///
///  - ChooseSubtree: minimum *overlap* enlargement at the level above the
///    leaves, minimum area enlargement elsewhere (ties by area).
///  - Split: ChooseSplitAxis by minimum total margin over all
///    distributions, ChooseSplitIndex by minimum overlap (ties by area).
///  - Forced reinsertion: on first overflow per level per insertion, the
///    30% of entries farthest from the node center are reinserted, which
///    retunes the tree and defers splits.
///
/// Nodes occupy exactly one simulated disk page and are read/written
/// through a BufferPool, so every traversal's page accesses are counted —
/// the experiments' metric. Fanout is derived from the page size: 1-D
/// nodes hold up to 170 entries, 2-D nodes 102, 3-D (spatiotemporal)
/// nodes 73.

#include <cstdint>
#include <set>
#include <vector>

#include "index/rect.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace ccdb {

/// Disk-resident R*-tree over `dims`-dimensional double rectangles.
class RStarTree {
 public:
  /// Creates an empty tree with its root on a fresh page.
  /// `dims` must be 1, 2, or 3 (3 = spatiotemporal (t, x, y) keys).
  RStarTree(BufferPool* pool, int dims);

  /// Inserts a rectangle with an opaque payload id.
  Status Insert(const Rect& rect, uint64_t id);

  /// Removes one entry matching (rect, id) exactly; NotFound if absent.
  Status Delete(const Rect& rect, uint64_t id);

  /// All payload ids whose rectangles intersect `query`.
  Result<std::vector<uint64_t>> Search(const Rect& query);

  /// All (rect, id) pairs intersecting `query` (used by refinement).
  struct Hit {
    Rect rect;
    uint64_t id;
  };
  Result<std::vector<Hit>> SearchHits(const Rect& query);

  int dims() const { return dims_; }
  size_t size() const { return size_; }
  int height() const { return root_level_ + 1; }
  PageId root() const { return root_; }
  size_t max_entries() const { return max_entries_; }
  size_t min_entries() const { return min_entries_; }

  /// Number of nodes currently in the tree.
  Result<size_t> CountNodes();

  /// Verifies structural invariants (MBR containment, fill factors,
  /// uniform leaf depth, entry count). Used by tests.
  Status CheckInvariants();

 private:
  struct Entry {
    Rect rect;
    uint64_t id;  // child page id (internal) or payload id (leaf)
  };
  struct Node {
    uint16_t level = 0;  // 0 = leaf
    std::vector<Entry> entries;

    bool IsLeaf() const { return level == 0; }
    Rect Mbr(int dims) const;
  };

  Result<Node> LoadNode(PageId id);
  Status StoreNode(PageId id, const Node& node);

  /// Descends from the root to the node at `target_level`, recording the
  /// path of (page, child-entry-index) decisions.
  struct PathStep {
    PageId page;
    size_t child_index;
  };
  Result<PageId> ChoosePath(const Rect& rect, uint16_t target_level,
                            std::vector<PathStep>* path);

  /// R* subtree choice within one node.
  size_t ChooseSubtree(const Node& node, const Rect& rect);

  /// Inserts `entry` at `target_level`, applying overflow treatment.
  /// `reinserted_levels` tracks which levels already did forced reinsert
  /// during the current top-level insertion.
  Status InsertAtLevel(Entry entry, uint16_t target_level,
                       std::set<uint16_t>* reinserted_levels);

  /// Handles a node that exceeds max_entries_: forced reinsert or split,
  /// then fixes ancestors. `path` leads from the root to `page`.
  Status OverflowTreatment(PageId page, Node node,
                           std::vector<PathStep> path,
                           std::set<uint16_t>* reinserted_levels);

  /// R* split of an overflowing entry list into two groups.
  void SplitEntries(std::vector<Entry>* entries,
                    std::vector<Entry>* sibling_out);

  /// Recomputes ancestor MBRs along `path` after a child changed.
  Status AdjustPathMbrs(const std::vector<PathStep>& path);

  /// Depth-first search for the leaf holding (rect, id).
  Result<bool> FindLeaf(PageId page, const Rect& rect, uint64_t id,
                        std::vector<PathStep>* path);

  Status CheckNode(PageId page, uint16_t expected_level, bool is_root,
                   size_t* leaf_entries);

  BufferPool* pool_;
  int dims_;
  size_t max_entries_;
  size_t min_entries_;
  size_t reinsert_count_;  // 30% of max
  PageId root_;
  uint16_t root_level_ = 0;
  size_t size_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_INDEX_RSTAR_TREE_H_
