#include "index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "obs/governance.h"
#include "obs/trace.h"

namespace ccdb {

namespace {

constexpr size_t kNodeHeaderSize = 4;  // u16 level + u16 count

size_t EntrySize(int dims) {
  return static_cast<size_t>(dims) * 2 * sizeof(double) + sizeof(uint64_t);
}

}  // namespace

std::string Rect::ToString() const {
  std::string out = "[";
  for (int d = 0; d < dims; ++d) {
    if (d) out += " x ";
    out += "(" + std::to_string(lo[d]) + ", " + std::to_string(hi[d]) + ")";
  }
  return out + "]";
}

Rect RStarTree::Node::Mbr(int dims) const {
  assert(!entries.empty());
  Rect mbr = entries[0].rect;
  mbr.dims = dims;
  for (size_t i = 1; i < entries.size(); ++i) {
    mbr = mbr.ExpandedBy(entries[i].rect);
  }
  return mbr;
}

RStarTree::RStarTree(BufferPool* pool, int dims) : pool_(pool), dims_(dims) {
  assert(dims >= 1 && dims <= kMaxIndexDims);
  max_entries_ = (kPageSize - kNodeHeaderSize) / EntrySize(dims);
  min_entries_ = std::max<size_t>(2, max_entries_ * 2 / 5);  // 40% fill
  reinsert_count_ = std::max<size_t>(1, max_entries_ * 3 / 10);  // 30%
  root_ = pool_->disk()->Allocate();
  Node empty_root;
  Status s = StoreNode(root_, empty_root);
  assert(s.ok());
  IgnoreError(s);  // storing to a freshly allocated page cannot fail
}

Result<RStarTree::Node> RStarTree::LoadNode(PageId id) {
  obs::NoteIndexNodeVisit();
  Page page;
  CCDB_RETURN_IF_ERROR(pool_->Get(id, &page));
  Node node;
  uint16_t level, count;
  std::memcpy(&level, page.bytes(), 2);
  std::memcpy(&count, page.bytes() + 2, 2);
  node.level = level;
  node.entries.resize(count);
  const uint8_t* p = page.bytes() + kNodeHeaderSize;
  for (uint16_t i = 0; i < count; ++i) {
    Entry& e = node.entries[i];
    e.rect.dims = dims_;
    for (int d = 0; d < dims_; ++d) {
      std::memcpy(&e.rect.lo[d], p, sizeof(double));
      p += sizeof(double);
      std::memcpy(&e.rect.hi[d], p, sizeof(double));
      p += sizeof(double);
    }
    std::memcpy(&e.id, p, sizeof(uint64_t));
    p += sizeof(uint64_t);
  }
  return node;
}

Status RStarTree::StoreNode(PageId id, const Node& node) {
  assert(node.entries.size() <= max_entries_);
  Page page;
  page.Zero();
  uint16_t level = node.level;
  uint16_t count = static_cast<uint16_t>(node.entries.size());
  std::memcpy(page.bytes(), &level, 2);
  std::memcpy(page.bytes() + 2, &count, 2);
  uint8_t* p = page.bytes() + kNodeHeaderSize;
  for (const Entry& e : node.entries) {
    for (int d = 0; d < dims_; ++d) {
      std::memcpy(p, &e.rect.lo[d], sizeof(double));
      p += sizeof(double);
      std::memcpy(p, &e.rect.hi[d], sizeof(double));
      p += sizeof(double);
    }
    std::memcpy(p, &e.id, sizeof(uint64_t));
    p += sizeof(uint64_t);
  }
  return pool_->Put(id, page);
}

size_t RStarTree::ChooseSubtree(const Node& node, const Rect& rect) {
  assert(!node.entries.empty());
  const bool children_are_leaves = node.level == 1;
  size_t best = 0;
  if (children_are_leaves) {
    // R*: minimize overlap enlargement; ties by area enlargement, then area.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      Rect grown = node.entries[i].rect.ExpandedBy(rect);
      double overlap_before = 0, overlap_after = 0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += node.entries[i].rect.OverlapArea(node.entries[j].rect);
        overlap_after += grown.OverlapArea(node.entries[j].rect);
      }
      double overlap_delta = overlap_after - overlap_before;
      double enlarge = node.entries[i].rect.Enlargement(rect);
      double area = node.entries[i].rect.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
        best = i;
      }
    }
    return best;
  }
  // Internal: minimize area enlargement; ties by area.
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    double enlarge = node.entries[i].rect.Enlargement(rect);
    double area = node.entries[i].rect.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = i;
    }
  }
  return best;
}

Result<PageId> RStarTree::ChoosePath(const Rect& rect, uint16_t target_level,
                                     std::vector<PathStep>* path) {
  PageId page = root_;
  CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  while (node.level > target_level) {
    size_t idx = ChooseSubtree(node, rect);
    path->push_back(PathStep{page, idx});
    page = node.entries[idx].id;
    CCDB_ASSIGN_OR_RETURN(node, LoadNode(page));
  }
  return page;
}

Status RStarTree::AdjustPathMbrs(const std::vector<PathStep>& path) {
  for (size_t i = path.size(); i-- > 0;) {
    CCDB_ASSIGN_OR_RETURN(Node parent, LoadNode(path[i].page));
    PageId child_page = parent.entries[path[i].child_index].id;
    CCDB_ASSIGN_OR_RETURN(Node child, LoadNode(child_page));
    parent.entries[path[i].child_index].rect = child.Mbr(dims_);
    CCDB_RETURN_IF_ERROR(StoreNode(path[i].page, parent));
  }
  return Status::OK();
}

Status RStarTree::Insert(const Rect& rect, uint64_t id) {
  assert(rect.dims == dims_);
  std::set<uint16_t> reinserted_levels;
  CCDB_RETURN_IF_ERROR(
      InsertAtLevel(Entry{rect, id}, 0, &reinserted_levels));
  ++size_;
  return Status::OK();
}

Status RStarTree::InsertAtLevel(Entry entry, uint16_t target_level,
                                std::set<uint16_t>* reinserted_levels) {
  std::vector<PathStep> path;
  CCDB_ASSIGN_OR_RETURN(PageId page, ChoosePath(entry.rect, target_level,
                                                &path));
  CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  node.entries.push_back(std::move(entry));
  if (node.entries.size() <= max_entries_) {
    CCDB_RETURN_IF_ERROR(StoreNode(page, node));
    return AdjustPathMbrs(path);
  }
  return OverflowTreatment(page, std::move(node), std::move(path),
                           reinserted_levels);
}

Status RStarTree::OverflowTreatment(PageId page, Node node,
                                    std::vector<PathStep> path,
                                    std::set<uint16_t>* reinserted_levels) {
  const uint16_t level = node.level;
  if (page != root_ && !reinserted_levels->count(level)) {
    // Forced reinsert: pull the 30% of entries farthest from the node's
    // center and insert them again at this level.
    reinserted_levels->insert(level);
    Rect mbr = node.Mbr(dims_);
    std::vector<std::pair<double, size_t>> by_distance;
    by_distance.reserve(node.entries.size());
    for (size_t i = 0; i < node.entries.size(); ++i) {
      by_distance.emplace_back(mbr.CenterDistance2(node.entries[i].rect), i);
    }
    std::sort(by_distance.begin(), by_distance.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<Entry> removed;
    std::vector<bool> take(node.entries.size(), false);
    for (size_t k = 0; k < reinsert_count_; ++k) {
      take[by_distance[k].second] = true;
    }
    std::vector<Entry> remaining;
    remaining.reserve(node.entries.size() - reinsert_count_);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      (take[i] ? removed : remaining).push_back(std::move(node.entries[i]));
    }
    node.entries = std::move(remaining);
    CCDB_RETURN_IF_ERROR(StoreNode(page, node));
    CCDB_RETURN_IF_ERROR(AdjustPathMbrs(path));
    // Reinsert closest-first ("reinsert in increasing distance" variant).
    for (size_t k = removed.size(); k-- > 0;) {
      CCDB_RETURN_IF_ERROR(
          InsertAtLevel(std::move(removed[k]), level, reinserted_levels));
    }
    return Status::OK();
  }

  // Split.
  std::vector<Entry> sibling_entries;
  SplitEntries(&node.entries, &sibling_entries);
  Node sibling;
  sibling.level = level;
  sibling.entries = std::move(sibling_entries);
  PageId sibling_page = pool_->disk()->Allocate();
  CCDB_RETURN_IF_ERROR(StoreNode(page, node));
  CCDB_RETURN_IF_ERROR(StoreNode(sibling_page, sibling));

  if (page == root_) {
    Node new_root;
    new_root.level = static_cast<uint16_t>(level + 1);
    new_root.entries.push_back(Entry{node.Mbr(dims_), page});
    new_root.entries.push_back(Entry{sibling.Mbr(dims_), sibling_page});
    PageId new_root_page = pool_->disk()->Allocate();
    CCDB_RETURN_IF_ERROR(StoreNode(new_root_page, new_root));
    root_ = new_root_page;
    root_level_ = new_root.level;
    return Status::OK();
  }

  PathStep parent_step = path.back();
  path.pop_back();
  CCDB_ASSIGN_OR_RETURN(Node parent, LoadNode(parent_step.page));
  parent.entries[parent_step.child_index].rect = node.Mbr(dims_);
  parent.entries.push_back(Entry{sibling.Mbr(dims_), sibling_page});
  if (parent.entries.size() <= max_entries_) {
    CCDB_RETURN_IF_ERROR(StoreNode(parent_step.page, parent));
    return AdjustPathMbrs(path);
  }
  return OverflowTreatment(parent_step.page, std::move(parent),
                           std::move(path), reinserted_levels);
}

void RStarTree::SplitEntries(std::vector<Entry>* entries,
                             std::vector<Entry>* sibling_out) {
  const size_t total = entries->size();
  const size_t m = min_entries_;
  assert(total == max_entries_ + 1);

  // ChooseSplitAxis: minimize total margin over all distributions of both
  // sortings (by lo and by hi) per axis.
  int best_axis = 0;
  bool best_axis_by_hi = false;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  // Remember the best distribution within the chosen axis (ChooseSplitIndex).
  size_t best_split = m;
  bool best_split_by_hi = false;

  for (int axis = 0; axis < dims_; ++axis) {
    double axis_margin = 0;
    double axis_best_overlap = std::numeric_limits<double>::infinity();
    double axis_best_area = std::numeric_limits<double>::infinity();
    size_t axis_best_split = m;
    bool axis_best_by_hi = false;
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::vector<Entry> sorted = *entries;
      std::sort(sorted.begin(), sorted.end(),
                [axis, by_hi](const Entry& a, const Entry& b) {
                  double ka = by_hi ? a.rect.hi[axis] : a.rect.lo[axis];
                  double kb = by_hi ? b.rect.hi[axis] : b.rect.lo[axis];
                  if (ka != kb) return ka < kb;
                  return (by_hi ? a.rect.lo[axis] : a.rect.hi[axis]) <
                         (by_hi ? b.rect.lo[axis] : b.rect.hi[axis]);
                });
      // Prefix and suffix MBRs.
      std::vector<Rect> prefix(total), suffix(total);
      prefix[0] = sorted[0].rect;
      for (size_t i = 1; i < total; ++i) {
        prefix[i] = prefix[i - 1].ExpandedBy(sorted[i].rect);
      }
      suffix[total - 1] = sorted[total - 1].rect;
      for (size_t i = total - 1; i-- > 0;) {
        suffix[i] = suffix[i + 1].ExpandedBy(sorted[i].rect);
      }
      for (size_t k = m; k + m <= total; ++k) {
        const Rect& g1 = prefix[k - 1];
        const Rect& g2 = suffix[k];
        axis_margin += g1.Margin() + g2.Margin();
        double overlap = g1.OverlapArea(g2);
        double area = g1.Area() + g2.Area();
        if (overlap < axis_best_overlap ||
            (overlap == axis_best_overlap && area < axis_best_area)) {
          axis_best_overlap = overlap;
          axis_best_area = area;
          axis_best_split = k;
          axis_best_by_hi = by_hi != 0;
        }
      }
    }
    if (axis_margin < best_axis_margin) {
      best_axis_margin = axis_margin;
      best_axis = axis;
      best_split = axis_best_split;
      best_split_by_hi = axis_best_by_hi;
      best_axis_by_hi = axis_best_by_hi;
    }
  }
  (void)best_axis_by_hi;

  std::sort(entries->begin(), entries->end(),
            [best_axis, best_split_by_hi](const Entry& a, const Entry& b) {
              double ka = best_split_by_hi ? a.rect.hi[best_axis]
                                           : a.rect.lo[best_axis];
              double kb = best_split_by_hi ? b.rect.hi[best_axis]
                                           : b.rect.lo[best_axis];
              if (ka != kb) return ka < kb;
              return (best_split_by_hi ? a.rect.lo[best_axis]
                                       : a.rect.hi[best_axis]) <
                     (best_split_by_hi ? b.rect.lo[best_axis]
                                       : b.rect.hi[best_axis]);
            });
  sibling_out->assign(entries->begin() + static_cast<ptrdiff_t>(best_split),
                      entries->end());
  entries->resize(best_split);
}

Result<std::vector<uint64_t>> RStarTree::Search(const Rect& query) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Hit> hits, SearchHits(query));
  std::vector<uint64_t> ids;
  ids.reserve(hits.size());
  for (const Hit& hit : hits) ids.push_back(hit.id);
  return ids;
}

Result<std::vector<RStarTree::Hit>> RStarTree::SearchHits(const Rect& query) {
  std::vector<Hit> hits;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    // Governance check-point: index scans of a governed query unwind
    // between node visits (mutating paths are left uninterrupted so the
    // tree's invariants cannot be torn mid-insert).
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    PageId page = stack.back();
    stack.pop_back();
    CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
    for (const Entry& e : node.entries) {
      if (!e.rect.Intersects(query)) continue;
      if (node.IsLeaf()) {
        obs::NoteIndexLeafHit();
        hits.push_back(Hit{e.rect, e.id});
      } else {
        stack.push_back(e.id);
      }
    }
  }
  return hits;
}

Result<bool> RStarTree::FindLeaf(PageId page, const Rect& rect, uint64_t id,
                                 std::vector<PathStep>* path) {
  CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  if (node.IsLeaf()) {
    for (const Entry& e : node.entries) {
      if (e.id == id && e.rect == rect) return true;
    }
    return false;
  }
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].rect.Contains(rect)) continue;
    path->push_back(PathStep{page, i});
    CCDB_ASSIGN_OR_RETURN(bool found,
                          FindLeaf(node.entries[i].id, rect, id, path));
    if (found) return true;
    path->pop_back();
  }
  return false;
}

Status RStarTree::Delete(const Rect& rect, uint64_t id) {
  std::vector<PathStep> path;
  CCDB_ASSIGN_OR_RETURN(bool found, FindLeaf(root_, rect, id, &path));
  if (!found) {
    return Status::NotFound("no index entry for id " + std::to_string(id));
  }
  PageId leaf_page = root_;
  if (!path.empty()) {
    CCDB_ASSIGN_OR_RETURN(Node last_parent, LoadNode(path.back().page));
    leaf_page = last_parent.entries[path.back().child_index].id;
  }
  CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(leaf_page));
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (node.entries[i].id == id && node.entries[i].rect == rect) {
      node.entries.erase(node.entries.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }

  // Condense: walk upward collecting underfull nodes as orphans.
  std::vector<Node> orphans;
  PageId current_page = leaf_page;
  Node current = std::move(node);
  for (size_t i = path.size(); i-- > 0;) {
    CCDB_ASSIGN_OR_RETURN(Node parent, LoadNode(path[i].page));
    if (current.entries.size() < min_entries_) {
      orphans.push_back(std::move(current));
      parent.entries.erase(parent.entries.begin() +
                           static_cast<ptrdiff_t>(path[i].child_index));
    } else {
      CCDB_RETURN_IF_ERROR(StoreNode(current_page, current));
      parent.entries[path[i].child_index].rect = current.Mbr(dims_);
    }
    current_page = path[i].page;
    current = std::move(parent);
  }
  CCDB_RETURN_IF_ERROR(StoreNode(current_page, current));

  // Shrink the root while it is internal with a single child.
  while (root_level_ > 0) {
    CCDB_ASSIGN_OR_RETURN(Node root_node, LoadNode(root_));
    if (root_node.entries.size() != 1) break;
    root_ = root_node.entries[0].id;
    --root_level_;
  }

  --size_;
  // Reinsert orphaned entries at their original levels.
  for (Node& orphan : orphans) {
    for (Entry& e : orphan.entries) {
      std::set<uint16_t> reinserted;
      CCDB_RETURN_IF_ERROR(InsertAtLevel(std::move(e), orphan.level,
                                         &reinserted));
    }
  }
  return Status::OK();
}

Result<size_t> RStarTree::CountNodes() {
  size_t count = 0;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    ++count;
    CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
    if (!node.IsLeaf()) {
      for (const Entry& e : node.entries) stack.push_back(e.id);
    }
  }
  return count;
}

Status RStarTree::CheckNode(PageId page, uint16_t expected_level,
                            bool is_root, size_t* leaf_entries) {
  CCDB_ASSIGN_OR_RETURN(Node node, LoadNode(page));
  if (node.level != expected_level) {
    return Status::Internal("node level mismatch: expected " +
                            std::to_string(expected_level) + ", got " +
                            std::to_string(node.level));
  }
  if (!is_root && node.entries.size() < min_entries_) {
    return Status::Internal("underfull non-root node (" +
                            std::to_string(node.entries.size()) + " < " +
                            std::to_string(min_entries_) + ")");
  }
  if (is_root && node.level > 0 && node.entries.size() < 2) {
    return Status::Internal("internal root with fewer than 2 children");
  }
  if (node.entries.size() > max_entries_) {
    return Status::Internal("overfull node");
  }
  if (node.IsLeaf()) {
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    CCDB_ASSIGN_OR_RETURN(Node child, LoadNode(e.id));
    Rect child_mbr = child.Mbr(dims_);
    if (!(e.rect == child_mbr)) {
      return Status::Internal("stale parent MBR: " + e.rect.ToString() +
                              " vs child " + child_mbr.ToString());
    }
    CCDB_RETURN_IF_ERROR(CheckNode(
        e.id, static_cast<uint16_t>(node.level - 1), false, leaf_entries));
  }
  return Status::OK();
}

Status RStarTree::CheckInvariants() {
  size_t leaf_entries = 0;
  CCDB_RETURN_IF_ERROR(CheckNode(root_, root_level_, true, &leaf_entries));
  if (leaf_entries != size_) {
    return Status::Internal("entry count mismatch: counted " +
                            std::to_string(leaf_entries) + ", size() says " +
                            std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace ccdb
