#ifndef CCDB_INDEX_STRATEGY_H_
#define CCDB_INDEX_STRATEGY_H_

/// \file strategy.h
/// The two multi-attribute indexing strategies compared in §5.4:
///
///  - *joint* index: one 2-dimensional R*-tree over both attributes.
///    When a query constrains only one attribute, "the bound of the other
///    attribute is set from minimum to maximum" (of the data domain).
///  - *separate* index: one 1-dimensional R*-tree per attribute. A query
///    over both attributes searches each index and intersects the
///    resulting tuple-id sets; its cost is the *sum* of the two searches.
///
/// Both implement `AttributeIndex` so experiments and the query layer can
/// swap strategies freely.

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "index/rstar_tree.h"

namespace ccdb {

/// A (possibly partial) rectangular query over attributes x and y.
/// An absent side leaves that attribute unconstrained.
struct BoxQuery {
  std::optional<std::pair<double, double>> x;  ///< [lo, hi] on x
  std::optional<std::pair<double, double>> y;  ///< [lo, hi] on y

  static BoxQuery Both(double xlo, double xhi, double ylo, double yhi) {
    return BoxQuery{{{xlo, xhi}}, {{ylo, yhi}}};
  }
  static BoxQuery XOnly(double lo, double hi) {
    return BoxQuery{{{lo, hi}}, std::nullopt};
  }
  static BoxQuery YOnly(double lo, double hi) {
    return BoxQuery{std::nullopt, {{lo, hi}}};
  }
};

/// Common interface of the two strategies.
class AttributeIndex {
 public:
  virtual ~AttributeIndex() = default;

  /// Indexes a tuple's bounding box (a point for relational attributes).
  virtual Status Insert(const Rect& box, uint64_t id) = 0;

  /// Ids of all indexed boxes intersecting the query window.
  virtual Result<std::vector<uint64_t>> Search(const BoxQuery& query) = 0;

  virtual const char* name() const = 0;
};

/// One 2-D R*-tree over both attributes.
class JointIndex final : public AttributeIndex {
 public:
  /// `domain` supplies the min/max substituted for an unqueried attribute.
  JointIndex(BufferPool* pool, const Rect& domain)
      : tree_(pool, 2), domain_(domain) {}

  Status Insert(const Rect& box, uint64_t id) override {
    return tree_.Insert(box, id);
  }

  Result<std::vector<uint64_t>> Search(const BoxQuery& query) override {
    Rect window = domain_;
    if (query.x) {
      window.lo[0] = query.x->first;
      window.hi[0] = query.x->second;
    }
    if (query.y) {
      window.lo[1] = query.y->first;
      window.hi[1] = query.y->second;
    }
    return tree_.Search(window);
  }

  const char* name() const override { return "joint"; }
  RStarTree& tree() { return tree_; }

 private:
  RStarTree tree_;
  Rect domain_;
};

/// Two 1-D R*-trees, one per attribute; conjunctive queries intersect the
/// per-attribute result sets (the paper's "separate" strategy).
class SeparateIndex final : public AttributeIndex {
 public:
  explicit SeparateIndex(BufferPool* pool)
      : x_tree_(pool, 1), y_tree_(pool, 1) {}

  Status Insert(const Rect& box, uint64_t id) override {
    CCDB_RETURN_IF_ERROR(x_tree_.Insert(Rect::Make1D(box.lo[0], box.hi[0]), id));
    return y_tree_.Insert(Rect::Make1D(box.lo[1], box.hi[1]), id);
  }

  Result<std::vector<uint64_t>> Search(const BoxQuery& query) override {
    if (query.x && !query.y) {
      return x_tree_.Search(Rect::Make1D(query.x->first, query.x->second));
    }
    if (query.y && !query.x) {
      return y_tree_.Search(Rect::Make1D(query.y->first, query.y->second));
    }
    if (!query.x && !query.y) {
      return Status::InvalidArgument("BoxQuery constrains no attribute");
    }
    CCDB_ASSIGN_OR_RETURN(
        std::vector<uint64_t> xs,
        x_tree_.Search(Rect::Make1D(query.x->first, query.x->second)));
    CCDB_ASSIGN_OR_RETURN(
        std::vector<uint64_t> ys,
        y_tree_.Search(Rect::Make1D(query.y->first, query.y->second)));
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    std::vector<uint64_t> both;
    std::set_intersection(xs.begin(), xs.end(), ys.begin(), ys.end(),
                          std::back_inserter(both));
    return both;
  }

  const char* name() const override { return "separate"; }
  RStarTree& x_tree() { return x_tree_; }
  RStarTree& y_tree() { return y_tree_; }

 private:
  RStarTree x_tree_;
  RStarTree y_tree_;
};

}  // namespace ccdb

#endif  // CCDB_INDEX_STRATEGY_H_
