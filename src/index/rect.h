#ifndef CCDB_INDEX_RECT_H_
#define CCDB_INDEX_RECT_H_

/// \file rect.h
/// Index keys: low-dimensional rectangles with double endpoints.
///
/// R*-tree keys are *filters*: the index returns a superset of the true
/// answer and the relation layer refines with exact rational predicates
/// (the filter-refine paradigm of Brinkhoff et al., which the paper cites
/// as [3]). Keys therefore use hardware doubles — conversions from exact
/// rationals round conservatively outward (`MakeConservative*`), so the
/// filter can produce false positives but never false negatives.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "num/rational.h"

namespace ccdb {

/// Maximum dimensionality of index keys (1-D intervals, 2-D boxes,
/// 3-D spatiotemporal boxes such as (t, x, y) trajectory envelopes).
inline constexpr int kMaxIndexDims = 3;

/// A closed box in 1, 2, or 3 dimensions with double endpoints.
struct Rect {
  int dims = 2;
  double lo[kMaxIndexDims] = {0, 0, 0};
  double hi[kMaxIndexDims] = {0, 0, 0};

  static Rect Make1D(double lo0, double hi0) {
    Rect r;
    r.dims = 1;
    r.lo[0] = lo0;
    r.hi[0] = hi0;
    return r;
  }
  static Rect Make2D(double lo0, double hi0, double lo1, double hi1) {
    Rect r;
    r.dims = 2;
    r.lo[0] = lo0;
    r.hi[0] = hi0;
    r.lo[1] = lo1;
    r.hi[1] = hi1;
    return r;
  }
  static Rect Make3D(double lo0, double hi0, double lo1, double hi1,
                     double lo2, double hi2) {
    Rect r;
    r.dims = 3;
    r.lo[0] = lo0;
    r.hi[0] = hi0;
    r.lo[1] = lo1;
    r.hi[1] = hi1;
    r.lo[2] = lo2;
    r.hi[2] = hi2;
    return r;
  }

  /// Conservative (outward-rounded) conversion from exact rational bounds.
  static double RoundDown(const Rational& v) {
    // ToDouble may round either way; step one ulp outward to stay below.
    return std::nextafter(v.ToDouble(), -HUGE_VAL);
  }
  static double RoundUp(const Rational& v) {
    return std::nextafter(v.ToDouble(), HUGE_VAL);
  }

  bool Intersects(const Rect& other) const {
    for (int d = 0; d < dims; ++d) {
      if (lo[d] > other.hi[d] || other.lo[d] > hi[d]) return false;
    }
    return true;
  }

  bool Contains(const Rect& other) const {
    for (int d = 0; d < dims; ++d) {
      if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
    }
    return true;
  }

  double Area() const {
    double area = 1.0;
    for (int d = 0; d < dims; ++d) area *= (hi[d] - lo[d]);
    return area;
  }

  /// Sum of extents (the R* "margin" measure).
  double Margin() const {
    double margin = 0.0;
    for (int d = 0; d < dims; ++d) margin += (hi[d] - lo[d]);
    return margin;
  }

  Rect ExpandedBy(const Rect& other) const {
    Rect out = *this;
    for (int d = 0; d < dims; ++d) {
      out.lo[d] = std::min(lo[d], other.lo[d]);
      out.hi[d] = std::max(hi[d], other.hi[d]);
    }
    return out;
  }

  /// Area of the intersection (0 when disjoint).
  double OverlapArea(const Rect& other) const {
    double area = 1.0;
    for (int d = 0; d < dims; ++d) {
      double span = std::min(hi[d], other.hi[d]) -
                    std::max(lo[d], other.lo[d]);
      if (span <= 0) return 0.0;
      area *= span;
    }
    return area;
  }

  /// Growth in area needed to cover `other`.
  double Enlargement(const Rect& other) const {
    return ExpandedBy(other).Area() - Area();
  }

  /// Squared distance between centers (forced-reinsert ordering).
  double CenterDistance2(const Rect& other) const {
    double sum = 0.0;
    for (int d = 0; d < dims; ++d) {
      double diff = (lo[d] + hi[d]) / 2 - (other.lo[d] + other.hi[d]) / 2;
      sum += diff * diff;
    }
    return sum;
  }

  bool operator==(const Rect& other) const {
    if (dims != other.dims) return false;
    for (int d = 0; d < dims; ++d) {
      if (lo[d] != other.lo[d] || hi[d] != other.hi[d]) return false;
    }
    return true;
  }

  std::string ToString() const;
};

}  // namespace ccdb

#endif  // CCDB_INDEX_RECT_H_
