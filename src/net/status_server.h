#ifndef CCDB_NET_STATUS_SERVER_H_
#define CCDB_NET_STATUS_SERVER_H_

/// \file status_server.h
/// A tiny HTTP/1.0 status listener: the scrape surface for fleet tooling.
///
/// `StatusServer` serves exactly two read-only paths over plain HTTP so
/// Prometheus, curl, and shell scripts can watch a `ccdb_serve` process
/// without speaking the binary protocol:
///
///  - `GET /metrics`  — the Prometheus text exposition of the wire
///    server's merged snapshot (service registry + `net.*` registry),
///    plus the `ccdb_build_info` identity sample.
///  - `GET /healthz`  — one JSON object with the process role
///    (`leader` | `replica`), catalog epoch, WAL position, and — on a
///    replica — the live lag figures straight from `Replica::stats()`.
///
/// The protocol handling is deliberately minimal and defensive: requests
/// are read through byte-capped `RecvSome` calls (`kMaxRequestBytes`);
/// an oversize or malformed request gets `400`, a non-GET method `405`,
/// an unknown path `404`, and every response carries
/// `Connection: close` followed by an orderly close — no keep-alive, no
/// chunking, no request body support. Each accepted connection is served
/// by its own short-lived thread so a stalled scraper can never wedge
/// the accept loop; `Shutdown()` drains exactly like `net::Server`.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/replica.h"
#include "net/server.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb::net {

/// Construction-time knobs of a StatusServer.
struct StatusServerOptions {
  uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Optional replica whose lag rides `/healthz`; its presence is what
  /// flips the advertised role to "replica". Not owned; must outlive the
  /// status server.
  Replica* replica = nullptr;
};

/// The HTTP status listener over one wire `Server`. All public methods
/// are thread-safe.
class StatusServer {
 public:
  /// Requests larger than this (anywhere before the blank line ending
  /// the header block) are answered `400` and closed.
  static constexpr size_t kMaxRequestBytes = 4096;

  /// Binds, then starts the accept loop. `server` (not owned) provides
  /// the scrape snapshot and must outlive the status server.
  static Result<std::unique_ptr<StatusServer>> Start(
      Server* server, StatusServerOptions options = {});

  /// Graceful drain (equivalent to Shutdown()).
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// The bound port (stable after Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, unblocks and joins every connection thread.
  /// Idempotent.
  void Shutdown();

 private:
  StatusServer(Server* server, StatusServerOptions options);

  void AcceptLoop();
  /// Reads one request, writes one response, closes.
  void ServeConnection(uint64_t conn_id, Socket sock);
  /// Joins finished connection threads (called from the accept loop).
  void ReapFinished() CCDB_EXCLUDES(mu_);

  /// Builds the full response bytes for one request head (everything up
  /// to and including the blank line). Never fails: protocol problems
  /// become 4xx responses.
  std::string RespondTo(const std::string& request_head) const;
  std::string MetricsBody() const;
  std::string HealthzBody() const;

  Server* server_;
  StatusServerOptions options_;
  Listener listener_;
  uint16_t port_ = 0;

  mutable Mutex mu_{"net.status_server"};
  bool stopping_ CCDB_GUARDED_BY(mu_) = false;
  uint64_t next_conn_id_ CCDB_GUARDED_BY(mu_) = 1;
  /// Sockets of live connections (owned by their threads' stacks; same
  /// registration discipline as net::Server).
  std::map<uint64_t, Socket*> live_ CCDB_GUARDED_BY(mu_);
  std::map<uint64_t, std::thread> threads_ CCDB_GUARDED_BY(mu_);
  std::vector<uint64_t> finished_ CCDB_GUARDED_BY(mu_);
  std::thread accept_thread_;
};

}  // namespace ccdb::net

#endif  // CCDB_NET_STATUS_SERVER_H_
