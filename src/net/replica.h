#ifndef CCDB_NET_REPLICA_H_
#define CCDB_NET_REPLICA_H_

/// \file replica.h
/// WAL-shipping read replicas: the follower.
///
/// A `Replica` keeps a local page-level copy of a leader's durable store
/// in sync by polling `SHIP_WAL` through a `net::Client`:
///
///  - *Bootstrap*: the first sync asks for a full snapshot (`from_lsn`
///    0) — every leader page read through the staging overlay, the
///    catalog root, and the LSN position — and installs it on the
///    replica's own simulated disk.
///  - *Steady state*: each sync asks for committed batches from
///    `applied_lsn + 1`. Every shipped record passes through
///    `ParseShippedBatch` — the exact framing validation recovery
///    applies to the on-disk log — before its after-images are written
///    to the local disk, so the replica's apply path IS the recovery
///    path.
///  - *Re-sync*: a shipment that fails validation (dropped, truncated,
///    corrupted, or reordered in flight) or fails to apply flags the
///    replica for snapshot re-bootstrap on the next sync; the same
///    happens when the leader's checkpoint truncated the LSN the
///    replica needs (the leader answers with a snapshot directly). No
///    invalid batch is ever applied.
///
/// After any sync that changed the disk, the replica reloads the catalog
/// from its local pages and publishes it into its own (follower)
/// `QueryService` as ONE transaction: the whole delta — replaced and
/// dropped relations alike — is staged in the replica's dedicated session
/// and committed as a single catalog-snapshot swap, so follower readers
/// never observe a half-applied sync. The follower service serves
/// read-only queries — typically fronted by a `net::Server` with
/// `read_only = true`. Replica lag is reported in batches
/// (`leader_next_lsn - 1 - applied_lsn`) via `stats()`.
///
/// When the leader dies, `Promote()` turns the follower into the new
/// leader: final best-effort drain, fresh WAL over the already-applied
/// local pages (`DurableStore::CreateAtRoot`), store attached to the
/// follower service, new term = highest seen + 1. Failed sync rounds
/// back off exponentially (capped, jittered) instead of hammering a
/// dead leader.

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "net/client.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb::net {

/// Construction-time knobs of a Replica.
struct ReplicaOptions {
  /// Delay between SHIP_WAL polls of the continuous sync thread.
  double poll_interval_ms = 20;
  /// Cap on the jittered exponential backoff the sync thread applies
  /// after failed rounds (a down leader is polled ever more slowly up to
  /// this ceiling, published as `replica.backoff_ms`).
  double max_backoff_ms = 1000;
  /// Buffer-pool capacity over the replica's local disk.
  size_t pool_pages = 64;
  /// Do not start the sync thread; the caller drives `SyncOnce()`
  /// (tests and the lag bench).
  bool start_paused = false;
  std::string client_name = "ccdb-replica";
  /// Optional registry receiving the replication-health gauges
  /// (`replica.lag_batches`, `replica.lag_bytes`,
  /// `replica.last_apply_lsn`, `replica.resyncs`), refreshed after every
  /// sync round — typically the follower Server's registry, so the
  /// gauges ride its scrape surfaces. Not owned; must outlive the
  /// replica.
  obs::MetricsRegistry* registry = nullptr;
  /// Optional structured event log receiving `replica_resync` events.
  /// Not owned; must outlive the replica.
  obs::EventLog* event_log = nullptr;
};

/// A WAL-shipping follower. All public methods are thread-safe.
class Replica {
 public:
  /// Connects to the leader and — unless `start_paused` — starts the
  /// continuous sync thread. `service` (not owned) is the follower-side
  /// QueryService whose base catalog the replica maintains; nothing else
  /// may write that catalog while the replica is live.
  static Result<std::unique_ptr<Replica>> Start(
      const std::string& leader_host, uint16_t leader_port,
      service::QueryService* service, ReplicaOptions options = {});

  /// Stops the sync thread and closes the leader connection.
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// One pull+validate+apply round against the leader. Serialized with
  /// the sync thread. On a validation or apply failure the replica is
  /// flagged for snapshot re-sync and the error is returned (the next
  /// round re-bootstraps); on a connection failure one reconnect is
  /// attempted on the following round.
  Status SyncOnce() CCDB_EXCLUDES(mu_);

  /// Blocks until the replica has observed itself caught up (applied
  /// LSN == leader next LSN - 1 on a completed sync). When started
  /// paused this drives SyncOnce itself; otherwise it watches the sync
  /// thread's progress. kDeadlineExceeded on timeout.
  Status WaitCaughtUp(double timeout_ms) CCDB_EXCLUDES(mu_);

  /// Point-in-time replication state.
  struct Stats {
    uint64_t applied_lsn = 0;       ///< last batch applied locally
    uint64_t leader_next_lsn = 0;   ///< leader position at the last sync
    uint64_t lag_batches = 0;       ///< committed batches not yet applied
    /// Estimated bytes behind: lag_batches x the mean applied record
    /// size (the follower cannot see unshipped bytes, so this is an
    /// honest estimate, 0 until a first record has been applied).
    uint64_t lag_bytes = 0;
    uint64_t bytes_applied = 0;     ///< raw record bytes applied so far
    uint64_t batches_applied = 0;
    uint64_t snapshots_installed = 0;  ///< bootstrap + re-sync loads
    uint64_t resyncs = 0;     ///< validation/apply failures forcing one
    uint64_t sync_failures = 0;  ///< failed SyncOnce rounds
    bool caught_up = false;   ///< applied == leader next - 1 at last sync
  };
  Stats stats() const CCDB_EXCLUDES(mu_);

  /// What a successful Promote() yields: the new leader term and the
  /// writable store (owned by the replica; valid until it is destroyed).
  struct Promoted {
    uint64_t term = 0;
    DurableStore* store = nullptr;
  };

  /// Failover: turns this caught-up-as-possible follower into a leader.
  /// Stops the sync thread, drains the old leader one last time (best
  /// effort — a dead leader just fails the drain), reopens the local
  /// disk writable via `DurableStore::CreateAtRoot`, attaches the store
  /// to the follower service, and returns the new leader term
  /// (`highest seen + 1`). Idempotent: a second call returns the same
  /// term and store. The caller flips its front-end via
  /// `Server::Promote(term, store)`.
  Result<Promoted> Promote() CCDB_EXCLUDES(mu_);

  /// Stops the sync thread (idempotent; also run by the destructor).
  void Stop();

 private:
  Replica(service::QueryService* service, ReplicaOptions options);

  void SyncLoop();
  Status SyncLocked() CCDB_REQUIRES(mu_);
  /// Installs a full snapshot image onto the local disk.
  Status InstallSnapshot(const DurableStore::ReplicationSnapshot& snapshot)
      CCDB_REQUIRES(mu_);
  /// Validates and applies one raw shipped batch record.
  Status ApplyRecord(const std::vector<uint8_t>& record) CCDB_REQUIRES(mu_);
  /// Grows the local disk until `page_id` exists.
  Status EnsurePage(PageId page_id) CCDB_REQUIRES(mu_);
  /// Reloads the catalog from the local disk and publishes it into the
  /// follower service atomically (one staged transaction, one commit).
  Status PublishCatalog() CCDB_REQUIRES(mu_);
  /// Refreshes the replica.* health gauges in `options_.registry`.
  void PublishGauges() CCDB_REQUIRES(mu_);
  /// The lag estimate in bytes (see Stats::lag_bytes).
  uint64_t LagBytesLocked() const CCDB_REQUIRES(mu_);

  service::QueryService* service_;
  ReplicaOptions options_;
  std::string leader_host_;
  uint16_t leader_port_ = 0;
  /// Follower-service session owning the publish transactions. Opened in
  /// Start() before any sync runs, closed in Stop(); only the mu_-guarded
  /// sync path uses it in between.
  service::SessionId publish_session_ = 0;

  /// Serializes sync rounds and guards all replication state.
  mutable Mutex mu_ CCDB_LOCK_ORDER(
      "service.session", "service.sessions", "service.dedup",
      "service.commit", "catalog.cell", "net.client", "obs.registry",
      "storage.store", "storage.pager", "storage.pool_shard")
      {"net.replica"};
  PageManager disk_ CCDB_GUARDED_BY(mu_);
  BufferPool pool_ CCDB_GUARDED_BY(mu_);
  PageId catalog_root_ CCDB_GUARDED_BY(mu_) = kInvalidPageId;
  uint64_t applied_lsn_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t leader_next_lsn_ CCDB_GUARDED_BY(mu_) = 0;
  bool need_snapshot_ CCDB_GUARDED_BY(mu_) = true;
  bool need_reconnect_ CCDB_GUARDED_BY(mu_) = false;
  bool caught_up_ CCDB_GUARDED_BY(mu_) = false;
  uint64_t batches_applied_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t bytes_applied_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t snapshots_installed_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t resyncs_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t sync_failures_ CCDB_GUARDED_BY(mu_) = 0;
  /// Successful ship+apply rounds; WaitCaughtUp only trusts a
  /// `caught_up_` produced by a round that completed after it was called.
  uint64_t completed_syncs_ CCDB_GUARDED_BY(mu_) = 0;
  /// Highest leader term observed (HELLO_OK / SHIP_END / SNAPSHOT); a
  /// shipment under a lower term is refused (stale revived leader).
  uint64_t leader_term_ CCDB_GUARDED_BY(mu_) = 0;
  /// Set once Promote() succeeds; later syncs refuse, later Promotes
  /// return the same outcome.
  bool promoted_ CCDB_GUARDED_BY(mu_) = false;
  uint64_t promoted_term_ CCDB_GUARDED_BY(mu_) = 0;
  /// The writable store minted at promotion (lives until the replica
  /// dies; the service and front-end server borrow it).
  std::unique_ptr<DurableStore> promoted_store_ CCDB_GUARDED_BY(mu_);
  /// Base-relation names the replica has published into the service.
  std::set<std::string> published_ CCDB_GUARDED_BY(mu_);

  /// Guards the client pointer only (leaf lock): Stop() must reach
  /// Close() while a sync round is blocked inside the client.
  mutable Mutex conn_mu_ CCDB_ACQUIRED_AFTER(mu_) CCDB_LOCK_ORDER("net.client"){"net.replica_conn"};
  std::unique_ptr<Client> client_ CCDB_GUARDED_BY(conn_mu_);

  std::atomic<bool> stop_{false};
  std::thread sync_thread_;
};

}  // namespace ccdb::net

#endif  // CCDB_NET_REPLICA_H_
