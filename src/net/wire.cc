#include "net/wire.h"

#include <cstring>

#include "storage/wal.h"  // Crc32

namespace ccdb::net {

namespace {

void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<uint8_t> ToBytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

}  // namespace

bool IsKnownMsgType(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
    case MsgType::kQuery:
    case MsgType::kSubmit:
    case MsgType::kWait:
    case MsgType::kCancel:
    case MsgType::kCheckpoint:
    case MsgType::kMetrics:
    case MsgType::kTrace:
    case MsgType::kListRelations:
    case MsgType::kGetRelation:
    case MsgType::kLoadRelation:
    case MsgType::kShipWal:
    case MsgType::kFetchTrace:
    case MsgType::kMetricsSnapshot:
    case MsgType::kPromote:
    case MsgType::kOk:
    case MsgType::kError:
    case MsgType::kResult:
    case MsgType::kSubmitted:
    case MsgType::kMetricsText:
    case MsgType::kTraceResult:
    case MsgType::kNameList:
    case MsgType::kRelationData:
    case MsgType::kHelloOk:
    case MsgType::kSnapshot:
    case MsgType::kWalBatch:
    case MsgType::kShipEnd:
    case MsgType::kTraceTree:
    case MsgType::kMetricsSnapshotData:
    case MsgType::kPromoted:
      return true;
  }
  return false;
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kQuery: return "QUERY";
    case MsgType::kSubmit: return "SUBMIT";
    case MsgType::kWait: return "WAIT";
    case MsgType::kCancel: return "CANCEL";
    case MsgType::kCheckpoint: return "CHECKPOINT";
    case MsgType::kMetrics: return "METRICS";
    case MsgType::kTrace: return "TRACE";
    case MsgType::kListRelations: return "LIST_RELATIONS";
    case MsgType::kGetRelation: return "GET_RELATION";
    case MsgType::kLoadRelation: return "LOAD_RELATION";
    case MsgType::kShipWal: return "SHIP_WAL";
    case MsgType::kFetchTrace: return "FETCH_TRACE";
    case MsgType::kMetricsSnapshot: return "METRICS_SNAPSHOT";
    case MsgType::kPromote: return "PROMOTE";
    case MsgType::kOk: return "OK";
    case MsgType::kError: return "ERROR";
    case MsgType::kResult: return "RESULT";
    case MsgType::kSubmitted: return "SUBMITTED";
    case MsgType::kMetricsText: return "METRICS_TEXT";
    case MsgType::kTraceResult: return "TRACE_RESULT";
    case MsgType::kNameList: return "NAME_LIST";
    case MsgType::kRelationData: return "RELATION_DATA";
    case MsgType::kHelloOk: return "HELLO_OK";
    case MsgType::kSnapshot: return "SNAPSHOT";
    case MsgType::kWalBatch: return "WAL_BATCH";
    case MsgType::kShipEnd: return "SHIP_END";
    case MsgType::kTraceTree: return "TRACE_TREE";
    case MsgType::kMetricsSnapshotData: return "METRICS_SNAPSHOT_DATA";
    case MsgType::kPromoted: return "PROMOTED";
  }
  return "?";
}

Status WriteFrame(Socket* sock, MsgType type,
                  const std::vector<uint8_t>& payload, uint64_t* bytes_out) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxFramePayload) + ")");
  }
  // One contiguous buffer so the frame leaves in a single send: the CRC
  // covers wire[4..4+1+len) — the type byte and the payload.
  std::vector<uint8_t> wire(kFrameOverhead + payload.size());
  StoreU32(wire.data(), static_cast<uint32_t>(payload.size()));
  wire[4] = static_cast<uint8_t>(type);
  if (!payload.empty()) {
    std::memcpy(wire.data() + 5, payload.data(), payload.size());
  }
  const uint32_t crc = Crc32(wire.data() + 4, 1 + payload.size());
  StoreU32(wire.data() + 5 + payload.size(), crc);
  CCDB_RETURN_IF_ERROR(sock->SendAll(wire.data(), wire.size()));
  if (bytes_out != nullptr) *bytes_out += wire.size();
  return Status::OK();
}

Status ReadFrame(Socket* sock, Frame* out, uint64_t* bytes_in) {
  uint8_t header[5];
  CCDB_RETURN_IF_ERROR(sock->RecvAll(header, sizeof(header)));
  const uint32_t len = LoadU32(header);
  const uint8_t type = header[4];
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(len) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte bound");
  }
  // Read the body (and its CRC) before judging the type byte: a reply is
  // only possible if the stream stays frame-aligned.
  std::vector<uint8_t> crc_buf(1 + len);
  crc_buf[0] = type;
  if (len > 0) {
    CCDB_RETURN_IF_ERROR(sock->RecvAll(crc_buf.data() + 1, len));
  }
  uint8_t crc_bytes[4];
  CCDB_RETURN_IF_ERROR(sock->RecvAll(crc_bytes, sizeof(crc_bytes)));
  const uint32_t want = LoadU32(crc_bytes);
  const uint32_t got = Crc32(crc_buf.data(), crc_buf.size());
  if (got != want) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  if (!IsKnownMsgType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (bytes_in != nullptr) *bytes_in += kFrameOverhead + len;
  out->type = static_cast<MsgType>(type);
  out->payload.assign(crc_buf.begin() + 1, crc_buf.end());
  return Status::OK();
}

void PutQueryOptions(Writer* w, const service::QueryOptions& opts) {
  w->PutU8(opts.deadline_us.has_value() ? 1 : 0);
  w->PutU64(opts.deadline_us ? DoubleBits(*opts.deadline_us) : 0);
  w->PutU8(opts.max_tuples.has_value() ? 1 : 0);
  w->PutU64(opts.max_tuples.value_or(0));
  w->PutU8(opts.max_constraints.has_value() ? 1 : 0);
  w->PutU64(opts.max_constraints.value_or(0));
  w->PutU8(opts.max_memory_bytes.has_value() ? 1 : 0);
  w->PutU64(opts.max_memory_bytes.value_or(0));
  // 0 = unset, 1 = false, 2 = true.
  w->PutU8(opts.allow_partial.has_value() ? (*opts.allow_partial ? 2 : 1)
                                          : 0);
  w->PutU64(opts.trip_at_check);
  w->PutU64(opts.trace_id);
  w->PutU64(opts.request_id);
  // QueryOptions::cancel is a process-local token; remote cancellation
  // goes through the CANCEL request instead.
}

Status GetQueryOptions(Reader* r, service::QueryOptions* out) {
  service::QueryOptions opts;
  CCDB_ASSIGN_OR_RETURN(uint8_t has_deadline, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t deadline_bits, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint8_t has_tuples, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t max_tuples, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint8_t has_constraints, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t max_constraints, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint8_t has_memory, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t max_memory, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint8_t partial, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t trip_at_check, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint64_t trace_id, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint64_t request_id, r->GetU64());
  for (uint8_t flag : {has_deadline, has_tuples, has_constraints, has_memory}) {
    if (flag > 1) {
      return Status::InvalidArgument("query options: presence flag > 1");
    }
  }
  if (partial > 2) {
    return Status::InvalidArgument("query options: bad allow_partial byte");
  }
  if (has_deadline != 0) {
    const double deadline = BitsToDouble(deadline_bits);
    if (!(deadline >= 0)) {  // also rejects NaN
      return Status::InvalidArgument("query options: negative deadline");
    }
    opts.deadline_us = deadline;
  }
  if (has_tuples != 0) opts.max_tuples = max_tuples;
  if (has_constraints != 0) opts.max_constraints = max_constraints;
  if (has_memory != 0) opts.max_memory_bytes = max_memory;
  if (partial != 0) opts.allow_partial = (partial == 2);
  opts.trip_at_check = trip_at_check;
  opts.trace_id = trace_id;
  opts.request_id = request_id;
  *out = std::move(opts);
  return Status::OK();
}

void PutRelation(Writer* w, const Relation& relation) {
  const std::vector<uint8_t> schema = SerializeSchema(relation.schema());
  w->PutString(std::string(schema.begin(), schema.end()));
  w->PutU32(static_cast<uint32_t>(relation.size()));
  for (const Tuple& tuple : relation.tuples()) {
    const std::vector<uint8_t> bytes = SerializeTuple(tuple);
    w->PutString(std::string(bytes.begin(), bytes.end()));
  }
}

Status GetRelation(Reader* r, Relation* out) {
  CCDB_ASSIGN_OR_RETURN(std::string schema_bytes, r->GetString());
  CCDB_ASSIGN_OR_RETURN(Schema schema, DeserializeSchema(ToBytes(schema_bytes)));
  CCDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  Relation relation{schema};
  for (uint32_t i = 0; i < n; ++i) {
    CCDB_ASSIGN_OR_RETURN(std::string tuple_bytes, r->GetString());
    CCDB_ASSIGN_OR_RETURN(Tuple tuple, DeserializeTuple(ToBytes(tuple_bytes)));
    CCDB_RETURN_IF_ERROR(relation.Insert(std::move(tuple)));
  }
  *out = std::move(relation);
  return Status::OK();
}

void PutQueryResponse(Writer* w, const service::QueryResponse& response) {
  w->PutString(response.step);
  w->PutU8(response.cache_hit ? 1 : 0);
  w->PutU8(response.truncated ? 1 : 0);
  w->PutU64(DoubleBits(response.latency_us));
  PutRelation(w, response.relation);
}

Status GetQueryResponse(Reader* r, service::QueryResponse* out) {
  service::QueryResponse response;
  CCDB_ASSIGN_OR_RETURN(response.step, r->GetString());
  CCDB_ASSIGN_OR_RETURN(uint8_t cache_hit, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint8_t truncated, r->GetU8());
  CCDB_ASSIGN_OR_RETURN(uint64_t latency_bits, r->GetU64());
  if (cache_hit > 1 || truncated > 1) {
    return Status::InvalidArgument("query response: bad flag byte");
  }
  response.cache_hit = cache_hit != 0;
  response.truncated = truncated != 0;
  response.latency_us = BitsToDouble(latency_bits);
  CCDB_RETURN_IF_ERROR(GetRelation(r, &response.relation));
  *out = std::move(response);
  return Status::OK();
}

void PutTraceNode(Writer* w, const obs::TraceNode& node) {
  w->PutString(node.label);
  w->PutU64(DoubleBits(node.wall_us));
  w->PutU64(DoubleBits(node.self_us));
  w->PutU64(node.tuples_in);
  w->PutU64(node.tuples_out);
  w->PutU64(node.counters.conjunctions);
  w->PutU64(node.counters.fm_eliminations);
  w->PutU64(node.counters.redundancy_culls);
  w->PutU64(node.counters.index_node_visits);
  w->PutU64(node.counters.index_leaf_hits);
  w->PutU64(node.counters.pages_read);
  w->PutU64(node.counters.pool_hits);
  w->PutU32(static_cast<uint32_t>(node.children.size()));
  for (const obs::TraceNode& child : node.children) {
    PutTraceNode(w, child);
  }
}

Status GetTraceNode(Reader* r, obs::TraceNode* out, uint32_t depth) {
  if (depth >= kMaxTraceDepth) {
    return Status::InvalidArgument("trace tree nested deeper than " +
                                   std::to_string(kMaxTraceDepth));
  }
  obs::TraceNode node;
  CCDB_ASSIGN_OR_RETURN(node.label, r->GetString());
  CCDB_ASSIGN_OR_RETURN(uint64_t wall_bits, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint64_t self_bits, r->GetU64());
  node.wall_us = BitsToDouble(wall_bits);
  node.self_us = BitsToDouble(self_bits);
  CCDB_ASSIGN_OR_RETURN(node.tuples_in, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.tuples_out, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.conjunctions, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.fm_eliminations, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.redundancy_culls, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.index_node_visits, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.index_leaf_hits, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.pages_read, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(node.counters.pool_hits, r->GetU64());
  CCDB_ASSIGN_OR_RETURN(uint32_t n_children, r->GetU32());
  // Every child costs at least its label length prefix + the fixed
  // fields, so a count beyond the frame bound is lying.
  if (n_children > kMaxFramePayload / 16) {
    return Status::InvalidArgument("trace tree child count implausible");
  }
  node.children.reserve(n_children);
  for (uint32_t i = 0; i < n_children; ++i) {
    obs::TraceNode child;
    CCDB_RETURN_IF_ERROR(GetTraceNode(r, &child, depth + 1));
    node.children.push_back(std::move(child));
  }
  *out = std::move(node);
  return Status::OK();
}

void PutRegistrySnapshot(Writer* w,
                         const obs::MetricsRegistry::Snapshot& snapshot) {
  w->PutU32(static_cast<uint32_t>(snapshot.values.size()));
  for (const auto& [name, value] : snapshot.values) {
    w->PutString(name);
    w->PutU64(value);
    w->PutU8(snapshot.gauges.count(name) != 0 ? 1 : 0);
  }
  w->PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const obs::Histogram::Snapshot& hist : snapshot.histograms) {
    w->PutString(hist.name);
    w->PutU64(hist.count);
    w->PutU64(hist.sum);
    w->PutU32(static_cast<uint32_t>(hist.buckets.size()));
    for (uint64_t bucket : hist.buckets) w->PutU64(bucket);
  }
}

Status GetRegistrySnapshot(Reader* r, obs::MetricsRegistry::Snapshot* out) {
  obs::MetricsRegistry::Snapshot snapshot;
  CCDB_ASSIGN_OR_RETURN(uint32_t n_values, r->GetU32());
  if (n_values > kMaxFramePayload / 16) {
    return Status::InvalidArgument("registry snapshot value count implausible");
  }
  snapshot.values.reserve(n_values);
  for (uint32_t i = 0; i < n_values; ++i) {
    std::pair<std::string, uint64_t> entry;
    CCDB_ASSIGN_OR_RETURN(entry.first, r->GetString());
    CCDB_ASSIGN_OR_RETURN(entry.second, r->GetU64());
    CCDB_ASSIGN_OR_RETURN(uint8_t is_gauge, r->GetU8());
    if (is_gauge > 1) {
      return Status::InvalidArgument("registry snapshot: bad gauge flag");
    }
    if (is_gauge != 0) snapshot.gauges.insert(entry.first);
    snapshot.values.push_back(std::move(entry));
  }
  CCDB_ASSIGN_OR_RETURN(uint32_t n_hists, r->GetU32());
  if (n_hists > kMaxFramePayload / 16) {
    return Status::InvalidArgument(
        "registry snapshot histogram count implausible");
  }
  snapshot.histograms.reserve(n_hists);
  for (uint32_t i = 0; i < n_hists; ++i) {
    obs::Histogram::Snapshot hist;
    CCDB_ASSIGN_OR_RETURN(hist.name, r->GetString());
    CCDB_ASSIGN_OR_RETURN(hist.count, r->GetU64());
    CCDB_ASSIGN_OR_RETURN(hist.sum, r->GetU64());
    CCDB_ASSIGN_OR_RETURN(uint32_t n_buckets, r->GetU32());
    if (n_buckets != hist.buckets.size()) {
      return Status::InvalidArgument(
          "registry snapshot: histogram bucket count mismatch");
    }
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      CCDB_ASSIGN_OR_RETURN(hist.buckets[b], r->GetU64());
    }
    snapshot.histograms.push_back(std::move(hist));
  }
  *out = std::move(snapshot);
  return Status::OK();
}

std::vector<uint8_t> EncodeErrorPayload(const Status& status) {
  return ToBytes(EncodeStatus(status));
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload, Status* out) {
  return DecodeStatus(std::string(payload.begin(), payload.end()), out);
}

}  // namespace ccdb::net
