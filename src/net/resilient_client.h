#ifndef CCDB_NET_RESILIENT_CLIENT_H_
#define CCDB_NET_RESILIENT_CLIENT_H_

/// \file resilient_client.h
/// The retrying wrapper over `net::Client`: reconnects, idempotent
/// retries, and leader-term tracking.
///
/// A `ResilientClient` owns one `Client` at a time and re-establishes it
/// whenever a *retryable* failure (see `Client::Retryable`) poisons the
/// connection, then retries the interrupted call under a capped,
/// jittered exponential backoff (`util/backoff.h`) bounded by a per-call
/// deadline. Three mechanisms make the retries safe and honest:
///
///  - *Idempotency keys*: every `Execute` whose options carry no
///    `request_id` gets one minted from a seeded PRNG stream. The server
///    registers each COMMIT's outcome under its id in a bounded dedup
///    table, so a COMMIT retried after a lost acknowledgement returns
///    the original outcome — never a double-apply, never a spurious
///    "no transaction in progress".
///  - *Term tracking*: the highest leader term observed on any response
///    is replayed as `known_term` in every reconnect HELLO, so a revived
///    stale leader is fenced (kFailedPrecondition) at the handshake
///    instead of silently accepting writes on a dead timeline.
///  - *Retry-after honoring*: a typed kUnavailable carrying
///    `retry_after_ms()` (governance shed, replica write refusal) delays
///    at least that long before the retry.
///
/// Fatal statuses — protocol corruption, version skew, fencing — are
/// returned immediately; only transport-level kUnavailable is retried.
///
/// Thread-safe; calls serialize, exactly like the raw Client.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "util/backoff.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"

namespace ccdb::net {

/// Construction-time knobs of a ResilientClient.
struct ResilientClientOptions {
  std::string client_name = "ccdb-resilient";
  /// Per-call wall-clock budget across all reconnects and retries; once
  /// spent, the last failure is returned as-is.
  double deadline_ms = 2000;
  double initial_backoff_ms = 1;  ///< first-retry delay (pre-jitter)
  double max_backoff_ms = 200;    ///< retry-delay cap (pre-jitter)
  /// Seeds both the jitter PRNG and the request-id stream (deterministic
  /// retries for tests). Distinct concurrent clients should use distinct
  /// seeds so their minted request ids cannot collide.
  uint64_t seed = 42;
  /// Chaos knobs (tests/benches): injected into every connection this
  /// wrapper dials, including reconnects — e.g. `drop_every = 10` plus a
  /// recv timeout measures recovered throughput under 10% frame loss.
  SocketFaults socket_faults;
  /// When > 0, each dialed connection gets a bounded recv wait so a
  /// dropped reply surfaces as retryable kUnavailable instead of a hang.
  double recv_timeout_ms = 0;
};

/// A reconnecting, retrying, term-tracking wire client.
class ResilientClient {
 public:
  /// Resolves the target and performs the first connect (itself retried
  /// under the deadline, so a server still binding its port is fine).
  static Result<std::unique_ptr<ResilientClient>> Connect(
      const std::string& host, uint16_t port,
      ResilientClientOptions options = {});

  ~ResilientClient() = default;
  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Executes a step-script, minting a request id when `opts` carries
  /// none, reconnecting and retrying on transport failure. A retried
  /// COMMIT is deduplicated server-side under the minted id.
  Result<service::QueryResponse> Execute(const std::string& script,
                                         service::QueryOptions opts = {})
      CCDB_EXCLUDES(mu_);

  /// Retrying counterparts of the raw client's calls.
  Status LoadRelation(const std::string& name, const Relation& relation)
      CCDB_EXCLUDES(mu_);
  Status Checkpoint() CCDB_EXCLUDES(mu_);
  Result<std::vector<std::string>> ListRelations() CCDB_EXCLUDES(mu_);
  Result<Relation> GetRelation(const std::string& name) CCDB_EXCLUDES(mu_);

  /// PROMOTE with retry: used to fail over to a replica that may still
  /// be mid-catch-up. Returns the new leader term.
  Result<uint64_t> Promote() CCDB_EXCLUDES(mu_);

  // --- Introspection ---

  /// The highest leader term observed on any connection so far.
  uint64_t highest_term() const CCDB_EXCLUDES(mu_);
  /// Fresh connections established after the first.
  uint64_t reconnects() const CCDB_EXCLUDES(mu_);
  /// Calls that were retried at least once.
  uint64_t retried_calls() const CCDB_EXCLUDES(mu_);
  /// True while the underlying connection reports a read-only server.
  bool server_read_only() const CCDB_EXCLUDES(mu_);

 private:
  explicit ResilientClient(std::string host, uint16_t port,
                           ResilientClientOptions options);

  /// Ensures a live (non-poisoned) connection, dialing a fresh one if
  /// needed, and returns it. Does not retry — the caller's loop does.
  Result<Client*> Ensure() CCDB_REQUIRES(mu_);
  /// Records the connection's latest term into highest_term_.
  void ObserveTerm() CCDB_REQUIRES(mu_);
  /// The shared retry loop: runs `op` against a live connection until it
  /// succeeds, fails fatally, or the deadline is spent.
  template <typename Op>
  auto Retry(Op op) -> decltype(op(static_cast<Client*>(nullptr)))
      CCDB_REQUIRES(mu_);

  const std::string host_;
  const uint16_t port_;
  const ResilientClientOptions options_;

  mutable Mutex mu_ CCDB_LOCK_ORDER("net.client"){"net.resilient_client"};
  std::unique_ptr<Client> client_ CCDB_GUARDED_BY(mu_);
  Backoff backoff_ CCDB_GUARDED_BY(mu_);
  Rng request_ids_ CCDB_GUARDED_BY(mu_);
  uint64_t highest_term_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t reconnects_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t retried_calls_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb::net

#endif  // CCDB_NET_RESILIENT_CLIENT_H_
