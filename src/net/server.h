#ifndef CCDB_NET_SERVER_H_
#define CCDB_NET_SERVER_H_

/// \file server.h
/// The wire-protocol front door: a TCP server over a QueryService.
///
/// `Server` binds a listening socket and maps each accepted connection
/// onto one `QueryService` session served by a dedicated thread (the
/// service's worker pool — not the connection thread — executes the
/// queries, so a slow query never blocks the protocol loop of another
/// connection). The connection thread parses frames (`net/wire.h`),
/// dispatches them, and streams responses back; every service-level
/// failure crosses the wire as a `kError` frame carrying the full
/// `Status` — code, message, and `retry_after_ms()` — so a client sees
/// governance shedding exactly as an in-process caller does.
///
/// Protocol errors (oversized length, unknown type, CRC mismatch, torn
/// frame) never crash or wedge the server: the connection gets a
/// best-effort `kError` and is closed, its session reclaimed.
///
/// With a `DurableStore` attached, the server is also a *replication
/// leader*: `SHIP_WAL from_lsn` answers with either the committed raw WAL
/// batch records from that LSN on (a stream of `kWalBatch` frames ending
/// in `kShipEnd`) or — when the log can no longer serve it, or
/// `from_lsn` is 0 — a full `kSnapshot` bootstrap image. `ShipFaults`
/// injects dropped / truncated / corrupted / reordered shipments for
/// re-sync testing.
///
/// The server also carries the *leader term* — a monotone epoch number
/// that fences a revived stale leader: every HELLO_OK / SHIP_END /
/// SNAPSHOT frame announces the server's term, clients echo the highest
/// term they have seen back in HELLO, and a *writable* server whose own
/// term is older refuses the handshake with kFailedPrecondition. A
/// `PROMOTE` request flips a read-only front-end into a writable leader
/// under a new term via the attached `promote_handler` (usually
/// `Replica::Promote`).
///
/// Shutdown() is a graceful drain: stop accepting, shut down every live
/// connection's socket (unblocking its protocol loop), join all threads,
/// close all sessions.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "service/query_service.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb::net {

/// Shipping fault injection (tests): 1-based indexes into the
/// server-lifetime sequence of shipped batch records; 0 disables. Each
/// fires once.
struct ShipFaults {
  uint64_t drop_at = 0;      ///< silently omit the Nth shipped batch
  uint64_t truncate_at = 0;  ///< ship only the first half of its bytes
  uint64_t corrupt_at = 0;   ///< flip one byte of its body
  uint64_t reorder_at = 0;   ///< swap it with the next batch (same shipment)
  /// Cut the connection instead of shipping the Nth batch — the leader
  /// "crashes" mid-shipment (the follower sees a torn stream).
  uint64_t cut_at = 0;
  uint64_t delay_at = 0;     ///< stall before shipping the Nth batch...
  double delay_ms = 0;       ///< ...for this long
};

/// What a successful promotion hands the server: the new leader term and
/// the (freshly writable) durable store to serve writes from.
struct Promotion {
  uint64_t term = 0;
  DurableStore* store = nullptr;  ///< not owned; must outlive the server
};

/// Construction-time knobs of a Server.
struct ServerOptions {
  uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
  size_t max_connections = 64;  ///< beyond this: typed kUnavailable refusal
  /// Refuse catalog writes and checkpoints (kUnavailable) — the follower
  /// front-end of a read replica.
  bool read_only = false;
  /// Optional durable store; enables SHIP_WAL (the leader side of
  /// replication). Not owned; must outlive the server.
  DurableStore* store = nullptr;
  std::string server_name = "ccdb";
  /// The leader term this server starts at. Leaders default to 1;
  /// replica front-ends conventionally start at 0 and learn their real
  /// term at promotion.
  uint64_t term = 1;
  /// Invoked by a PROMOTE request against a read-only server; performs
  /// the actual catch-up + store reopen (usually `Replica::Promote`) and
  /// returns the new term and writable store. Absent → PROMOTE answers
  /// kUnavailable.
  std::function<Result<Promotion>()> promote_handler;
  ShipFaults ship_faults;     ///< replication fault injection (tests)
  /// Optional structured event log receiving connection open/close and
  /// HELLO version-skew events. Not owned; must outlive the server.
  obs::EventLog* event_log = nullptr;
};

/// A TCP server exposing one QueryService over the binary wire protocol.
/// All public methods are thread-safe.
class Server {
 public:
  /// Binds, then starts the accept loop. `service` is not owned and must
  /// outlive the server.
  static Result<std::unique_ptr<Server>> Start(service::QueryService* service,
                                               ServerOptions options = {});

  /// Graceful drain (equivalent to Shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (stable after Start).
  uint16_t port() const { return port_; }

  /// The current leader term this server serves under.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }

  /// True while this server refuses writes (replica front-end).
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Flips this server into a writable leader serving under `term` from
  /// `store` (not owned; must outlive the server). Normally reached via
  /// the wire PROMOTE request, but callable directly (`\promote` against
  /// an embedded server). Idempotent once writable.
  void Promote(uint64_t term, DurableStore* store);

  /// Stops accepting, unblocks and joins every connection thread, closes
  /// their sessions. Idempotent.
  void Shutdown();

  /// Connections currently being served.
  size_t open_connections() const CCDB_EXCLUDES(mu_);

  /// The `\metrics` rendering: service metrics followed by the server's
  /// own `net.*` registry dump.
  std::string MetricsText() const;

  /// The server's network metrics (net.connections.*, net.bytes.*, ...).
  obs::MetricsRegistry& registry() { return registry_; }

  /// The scrape surface: the service's registry snapshot (health gauges
  /// included) merged with this server's `net.*` registry, values
  /// re-sorted. Both the binary METRICS_SNAPSHOT response and the HTTP
  /// `/metrics` endpoint render exactly this.
  obs::MetricsRegistry::Snapshot MergedSnapshot() const;

 private:
  Server(service::QueryService* service, ServerOptions options);

  void AcceptLoop();
  /// Serves one connection until EOF, protocol error, or drain.
  void ServeConnection(uint64_t conn_id, Socket sock);
  /// Joins finished connection threads (called from the accept loop).
  void ReapFinished() CCDB_EXCLUDES(mu_);

  /// Per-connection protocol state.
  struct Conn {
    service::SessionId session = 0;
    bool helloed = false;
    /// SUBMITted queries not yet WAITed on.
    std::map<uint64_t, std::future<Result<service::QueryResponse>>> pending;
  };

  /// Dispatches one request frame; `*close_conn` asks the caller to end
  /// the connection after the reply. A non-OK return means the reply
  /// could not be sent (socket gone) — the loop exits.
  Status Dispatch(Conn* conn, Socket* sock, const Frame& frame,
                  bool* close_conn);
  Status SendError(Socket* sock, const Status& error);
  Status HandleShipWal(Socket* sock, uint64_t from_lsn);
  Status SendSnapshot(Socket* sock);

  service::QueryService* service_;
  ServerOptions options_;
  Listener listener_;
  uint16_t port_ = 0;

  // Failover state: all three flip together at Promote(). Atomics (not
  // options_ reads) so connection threads observe the flip without locks.
  std::atomic<uint64_t> term_{1};
  std::atomic<bool> read_only_{false};
  std::atomic<DurableStore*> store_{nullptr};

  mutable Mutex mu_ CCDB_LOCK_ORDER("obs.registry"){"net.server"};
  bool stopping_ CCDB_GUARDED_BY(mu_) = false;
  uint64_t next_conn_id_ CCDB_GUARDED_BY(mu_) = 1;
  /// Sockets of live connections (owned by their threads' stacks; entries
  /// are registered before the first read and removed before the socket
  /// dies, so ShutdownBoth through this map is always safe).
  std::map<uint64_t, Socket*> live_ CCDB_GUARDED_BY(mu_);
  std::map<uint64_t, std::thread> threads_ CCDB_GUARDED_BY(mu_);
  std::vector<uint64_t> finished_ CCDB_GUARDED_BY(mu_);
  std::thread accept_thread_;

  /// Server-lifetime count of shipped batch records (fault-injection
  /// indexes are matched against it).
  std::atomic<uint64_t> ship_seq_{0};

  mutable obs::MetricsRegistry registry_;
  obs::Counter* conns_total_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* frames_in_;
  obs::Counter* protocol_errors_;
  obs::Counter* ship_batches_;
  obs::Counter* ship_snapshots_;
};

}  // namespace ccdb::net

#endif  // CCDB_NET_SERVER_H_
