#include "net/client.h"

#include <utility>

#include "storage/serde.h"

namespace ccdb::net {

namespace {

/// The retry taxonomy at the transport boundary: a failure from the
/// socket layer that is not already typed as a protocol error becomes
/// the retryable kUnavailable (a fresh connection may succeed), keeping
/// the original diagnosis in the message. Typed protocol errors
/// (kInvalidArgument and friends) pass through — they are fatal.
Status ClassifyTransport(Status status) {
  if (status.code() == StatusCode::kIoError) {
    Status out = Status::Unavailable(status.message());
    return out;
  }
  return status;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  auto client = std::unique_ptr<Client>(new Client());
  {
    MutexLock lock(client->mu_);
    Result<Socket> sock = TcpConnect(host, port);
    if (!sock.ok()) return ClassifyTransport(sock.status());
    client->sock_ = std::move(sock).value();
    Writer w;
    w.PutU32(kProtocolVersion);
    w.PutString(options.client_name);
    w.PutU64(options.known_term);
    CCDB_ASSIGN_OR_RETURN(
        Frame reply,
        client->Call(MsgType::kHello, w.buffer(), MsgType::kHelloOk));
    Reader r(reply.payload);
    CCDB_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
    CCDB_ASSIGN_OR_RETURN(uint8_t read_only, r.GetU8());
    CCDB_ASSIGN_OR_RETURN(client->session_id_, r.GetU64());
    CCDB_ASSIGN_OR_RETURN(client->server_name_, r.GetString());
    CCDB_ASSIGN_OR_RETURN(uint64_t term, r.GetU64());
    if (version != kProtocolVersion || read_only > 1) {
      return Status::InvalidArgument("malformed HELLO_OK");
    }
    client->server_read_only_ = read_only != 0;
    client->server_term_.store(term, std::memory_order_relaxed);
  }
  return client;
}

void Client::Close() {
  // No mu_ here on purpose: a caller blocked inside an RPC holds mu_
  // while parked in recv, and Close must still be able to unblock it.
  // ShutdownBoth leaves the fd open (the destructor closes it), so the
  // blocked reader wakes with a transport error instead of racing a
  // reused descriptor.
  poisoned_.store(true, std::memory_order_relaxed);
  sock_.ShutdownBoth();
}

Status Client::CheckLive() {
  mu_.AssertHeld();
  if (poisoned_ || !sock_.valid()) {
    return Status::Unavailable("connection is closed");
  }
  return Status::OK();
}

Result<Frame> Client::Call(MsgType request,
                           const std::vector<uint8_t>& payload,
                           MsgType expect) {
  mu_.AssertHeld();
  CCDB_RETURN_IF_ERROR(CheckLive());
  Status sent = WriteFrame(&sock_, request, payload);
  if (!sent.ok()) {
    poisoned_ = true;
    return ClassifyTransport(std::move(sent));
  }
  Frame reply;
  Status read = ReadFrame(&sock_, &reply);
  if (!read.ok()) {
    poisoned_ = true;
    // Torn frame / peer closed / recv timeout → retryable kUnavailable;
    // CRC mismatch and unknown-type stay kInvalidArgument — fatal.
    return ClassifyTransport(std::move(read));
  }
  if (reply.type == MsgType::kError) {
    Status transported = Status::OK();
    Status decoded = DecodeErrorPayload(reply.payload, &transported);
    if (!decoded.ok() || transported.ok()) {
      poisoned_ = true;
      return Status::InvalidArgument("malformed error frame from server");
    }
    return transported;
  }
  if (reply.type != expect) {
    // The stream is out of phase; nothing later can be trusted, and a
    // blind retry would desynchronize again — fatal, not retryable.
    poisoned_ = true;
    return Status::InvalidArgument(std::string("unexpected response frame ") +
                                   MsgTypeName(reply.type) + " (wanted " +
                                   MsgTypeName(expect) + ")");
  }
  return reply;
}

Result<service::QueryResponse> Client::Execute(
    const std::string& script, const service::QueryOptions& opts) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(script);
  PutQueryOptions(&w, opts);
  CCDB_ASSIGN_OR_RETURN(Frame reply,
                        Call(MsgType::kQuery, w.buffer(), MsgType::kResult));
  Reader r(reply.payload);
  service::QueryResponse response;
  CCDB_RETURN_IF_ERROR(GetQueryResponse(&r, &response));
  return response;
}

Result<uint64_t> Client::Submit(const std::string& script,
                                const service::QueryOptions& opts) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(script);
  PutQueryOptions(&w, opts);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply, Call(MsgType::kSubmit, w.buffer(), MsgType::kSubmitted));
  Reader r(reply.payload);
  return r.GetU64();
}

Result<service::QueryResponse> Client::Wait(uint64_t query_id) {
  MutexLock lock(mu_);
  Writer w;
  w.PutU64(query_id);
  CCDB_ASSIGN_OR_RETURN(Frame reply,
                        Call(MsgType::kWait, w.buffer(), MsgType::kResult));
  Reader r(reply.payload);
  service::QueryResponse response;
  CCDB_RETURN_IF_ERROR(GetQueryResponse(&r, &response));
  return response;
}

Status Client::Cancel(uint64_t query_id) {
  MutexLock lock(mu_);
  Writer w;
  w.PutU64(query_id);
  return Call(MsgType::kCancel, w.buffer(), MsgType::kOk).status();
}

Status Client::Checkpoint() {
  MutexLock lock(mu_);
  return Call(MsgType::kCheckpoint, {}, MsgType::kOk).status();
}

Result<uint64_t> Client::Promote() {
  MutexLock lock(mu_);
  CCDB_ASSIGN_OR_RETURN(Frame reply,
                        Call(MsgType::kPromote, {}, MsgType::kPromoted));
  Reader r(reply.payload);
  CCDB_ASSIGN_OR_RETURN(uint64_t term, r.GetU64());
  server_term_.store(term, std::memory_order_relaxed);
  server_read_only_ = false;
  return term;
}

void Client::SetSocketFaults(const SocketFaults& faults) {
  MutexLock lock(mu_);
  sock_.SetFaults(faults);
}

Status Client::SetRecvTimeout(double ms) {
  MutexLock lock(mu_);
  return sock_.SetRecvTimeout(ms);
}

Result<std::string> Client::MetricsText() {
  MutexLock lock(mu_);
  CCDB_ASSIGN_OR_RETURN(Frame reply,
                        Call(MsgType::kMetrics, {}, MsgType::kMetricsText));
  Reader r(reply.payload);
  return r.GetString();
}

Result<Client::RemoteTrace> Client::Trace(const std::string& script) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(script);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply, Call(MsgType::kTrace, w.buffer(), MsgType::kTraceResult));
  Reader r(reply.payload);
  RemoteTrace trace;
  CCDB_ASSIGN_OR_RETURN(uint8_t used_plan, r.GetU8());
  if (used_plan > 1) {
    return Status::InvalidArgument("trace result: bad used_plan byte");
  }
  trace.used_plan = used_plan != 0;
  CCDB_ASSIGN_OR_RETURN(trace.plan_text, r.GetString());
  CCDB_ASSIGN_OR_RETURN(trace.trace_text, r.GetString());
  CCDB_RETURN_IF_ERROR(GetQueryResponse(&r, &trace.response));
  return trace;
}

Result<Client::RemoteTraceTree> Client::FetchTrace(const std::string& script,
                                                   uint64_t trace_id) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(script);
  w.PutU64(trace_id);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply,
      Call(MsgType::kFetchTrace, w.buffer(), MsgType::kTraceTree));
  Reader r(reply.payload);
  RemoteTraceTree trace;
  CCDB_ASSIGN_OR_RETURN(uint8_t used_plan, r.GetU8());
  if (used_plan > 1) {
    return Status::InvalidArgument("trace tree: bad used_plan byte");
  }
  trace.used_plan = used_plan != 0;
  CCDB_ASSIGN_OR_RETURN(trace.plan_text, r.GetString());
  CCDB_ASSIGN_OR_RETURN(trace.trace_id, r.GetU64());
  CCDB_RETURN_IF_ERROR(GetTraceNode(&r, &trace.root));
  CCDB_RETURN_IF_ERROR(GetQueryResponse(&r, &trace.response));
  return trace;
}

Result<obs::MetricsRegistry::Snapshot> Client::MetricsSnapshot() {
  MutexLock lock(mu_);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply,
      Call(MsgType::kMetricsSnapshot, {}, MsgType::kMetricsSnapshotData));
  Reader r(reply.payload);
  obs::MetricsRegistry::Snapshot snapshot;
  CCDB_RETURN_IF_ERROR(GetRegistrySnapshot(&r, &snapshot));
  return snapshot;
}

Result<std::vector<std::string>> Client::ListRelations() {
  MutexLock lock(mu_);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply, Call(MsgType::kListRelations, {}, MsgType::kNameList));
  Reader r(reply.payload);
  CCDB_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<std::string> names;
  names.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CCDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
    names.push_back(std::move(name));
  }
  return names;
}

Result<Relation> Client::GetRelation(const std::string& name) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(name);
  CCDB_ASSIGN_OR_RETURN(
      Frame reply,
      Call(MsgType::kGetRelation, w.buffer(), MsgType::kRelationData));
  Reader r(reply.payload);
  Relation relation;
  CCDB_RETURN_IF_ERROR(net::GetRelation(&r, &relation));
  return relation;
}

Status Client::LoadRelation(const std::string& name,
                            const Relation& relation) {
  MutexLock lock(mu_);
  Writer w;
  w.PutString(name);
  PutRelation(&w, relation);
  return Call(MsgType::kLoadRelation, w.buffer(), MsgType::kOk).status();
}

Result<Client::Shipment> Client::ShipWal(uint64_t from_lsn) {
  MutexLock lock(mu_);
  CCDB_RETURN_IF_ERROR(CheckLive());
  Writer w;
  w.PutU64(from_lsn);
  Status sent = WriteFrame(&sock_, MsgType::kShipWal, w.buffer());
  if (!sent.ok()) {
    poisoned_ = true;
    return ClassifyTransport(std::move(sent));
  }

  Shipment shipment;
  while (true) {
    Frame frame;
    Status read = ReadFrame(&sock_, &frame);
    if (!read.ok()) {
      poisoned_ = true;
      return ClassifyTransport(std::move(read));
    }
    switch (frame.type) {
      case MsgType::kWalBatch:
        shipment.records.push_back(std::move(frame.payload));
        continue;

      case MsgType::kShipEnd: {
        Reader r(frame.payload);
        CCDB_ASSIGN_OR_RETURN(shipment.leader_next_lsn, r.GetU64());
        CCDB_ASSIGN_OR_RETURN(shipment.leader_term, r.GetU64());
        server_term_.store(shipment.leader_term, std::memory_order_relaxed);
        return shipment;
      }

      case MsgType::kSnapshot: {
        if (!shipment.records.empty()) {
          poisoned_ = true;
          return Status::InvalidArgument("snapshot frame mid batch stream");
        }
        Reader r(frame.payload);
        DurableStore::ReplicationSnapshot snapshot;
        CCDB_ASSIGN_OR_RETURN(snapshot.next_lsn, r.GetU64());
        CCDB_ASSIGN_OR_RETURN(snapshot.catalog_root, r.GetU64());
        CCDB_ASSIGN_OR_RETURN(uint32_t n_pages, r.GetU32());
        // Page images plus the trailing u64 leader term.
        if (r.remaining() != static_cast<size_t>(n_pages) * kPageSize + 8) {
          return Status::InvalidArgument("snapshot frame size mismatch");
        }
        snapshot.pages.resize(n_pages);
        for (uint32_t i = 0; i < n_pages; ++i) {
          for (size_t b = 0; b < kPageSize; ++b) {
            CCDB_ASSIGN_OR_RETURN(snapshot.pages[i].data[b], r.GetU8());
          }
        }
        CCDB_ASSIGN_OR_RETURN(shipment.leader_term, r.GetU64());
        server_term_.store(shipment.leader_term, std::memory_order_relaxed);
        shipment.is_snapshot = true;
        shipment.snapshot = std::move(snapshot);
        shipment.leader_next_lsn = shipment.snapshot.next_lsn;
        return shipment;
      }

      case MsgType::kError: {
        Status transported = Status::OK();
        Status decoded = DecodeErrorPayload(frame.payload, &transported);
        if (!decoded.ok() || transported.ok()) {
          poisoned_ = true;
          return Status::InvalidArgument("malformed error frame from server");
        }
        return transported;
      }

      default:
        poisoned_ = true;
        return Status::InvalidArgument(
            std::string("unexpected response frame ") +
            MsgTypeName(frame.type) + " in a SHIP_WAL stream");
    }
  }
}

}  // namespace ccdb::net
