#ifndef CCDB_NET_WIRE_H_
#define CCDB_NET_WIRE_H_

/// \file wire.h
/// The CCDB binary wire protocol: framing and payload codecs.
///
/// Every message on the wire is one *frame*:
///
///     [u32 payload_len][u8 type][payload bytes][u32 crc]
///
/// all little-endian; the CRC-32 (same polynomial as the WAL's) covers the
/// type byte followed by the payload, so a flipped type or a corrupted
/// body is detected before dispatch. `payload_len` is bounded by
/// `kMaxFramePayload` — a garbage length prefix surfaces as a typed
/// protocol error, never as a multi-gigabyte allocation.
///
/// Payloads are built with the storage layer's `Writer`/`Reader`
/// (little-endian, length-prefixed — the same primitives that serialize
/// tuples on disk), so relations cross the wire in exactly their catalog
/// serialization. Statuses cross via `EncodeStatus`/`DecodeStatus`
/// (util/status.h): code, `retry_after_ms()` hint, and message round-trip,
/// so governance shedding on the server surfaces to remote clients with
/// the same backoff hint in-process callers see.
///
/// The request/response vocabulary (`MsgType`) is deliberately flat — one
/// request frame in, one or more response frames out, ending with exactly
/// one terminal frame per request (`kShipWal` streams `kWalBatch` frames
/// before its terminal `kShipEnd`/`kSnapshot`/`kError`).

#include <cstdint>
#include <string>
#include <vector>

#include "data/relation.h"
#include "service/query_service.h"
#include "storage/serde.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb::net {

/// Bumped on any incompatible change; HELLO fails on mismatch.
/// v2: leader-term fencing — HELLO carries the client's highest seen
/// term, HELLO_OK / SHIP_END / SNAPSHOT carry the server's term, and the
/// PROMOTE/PROMOTED pair exists.
inline constexpr uint32_t kProtocolVersion = 2;

/// Upper bound on a frame's payload. Large enough for a bootstrap
/// snapshot of any disk the tests or benches build (16 Ki pages), small
/// enough that a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Bytes of frame overhead around the payload (length, type, CRC).
inline constexpr size_t kFrameOverhead = 4 + 1 + 4;

/// Frame types. Requests are < 64, responses >= 64.
enum class MsgType : uint8_t {
  // --- Requests ---
  kHello = 1,        ///< u32 version, string client name,
                     ///< u64 highest term the client has seen (fencing)
  kQuery = 2,        ///< string script, QueryOptions
  kSubmit = 3,       ///< string script, QueryOptions
  kWait = 4,         ///< u64 query id
  kCancel = 5,       ///< u64 query id
  kCheckpoint = 6,   ///< (empty)
  kMetrics = 7,      ///< (empty)
  kTrace = 8,        ///< string script
  kListRelations = 9,   ///< (empty)
  kGetRelation = 10,    ///< string name
  kLoadRelation = 11,   ///< string name, relation
  kShipWal = 12,        ///< u64 from_lsn (0 = request a full snapshot)
  kFetchTrace = 13,     ///< string script, u64 trace_id — run traced,
                        ///< return the structured span tree
  kMetricsSnapshot = 14,  ///< (empty) — merged service+net registry
                          ///< snapshot (the binary scrape surface)
  kPromote = 15,     ///< (empty) — promote this replica to leader

  // --- Responses ---
  kOk = 64,          ///< (empty) — generic success
  kError = 65,       ///< EncodeStatus bytes
  kResult = 66,      ///< QueryResponse
  kSubmitted = 67,   ///< u64 query id
  kMetricsText = 68, ///< string rendering
  kTraceResult = 69, ///< u8 used_plan, string plan, string trace,
                     ///< QueryResponse
  kNameList = 70,    ///< u32 n, n strings
  kRelationData = 71,  ///< relation
  kHelloOk = 72,     ///< u32 version, u8 read_only, u64 session id,
                     ///< string server name, u64 leader term
  kSnapshot = 73,    ///< u64 next_lsn, u64 catalog_root, u32 n_pages,
                     ///< n_pages x kPageSize raw images, u64 leader term
  kWalBatch = 74,    ///< raw committed WAL batch record bytes
  kShipEnd = 75,     ///< u64 leader next_lsn, u64 leader term
  kTraceTree = 76,   ///< u8 used_plan, string plan, u64 trace_id,
                     ///< TraceNode tree, QueryResponse
  kMetricsSnapshotData = 77,  ///< encoded MetricsRegistry::Snapshot
  kPromoted = 78,    ///< u64 new leader term
};

/// True for a type byte this protocol version knows.
bool IsKnownMsgType(uint8_t type);

/// Human-readable type name ("QUERY", "SHIP_WAL", ...; "?" when unknown).
const char* MsgTypeName(MsgType type);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<uint8_t> payload;
};

/// Writes one frame. `bytes_out`, when given, is incremented by the bytes
/// put on the wire. kInvalidArgument when the payload exceeds
/// `kMaxFramePayload`; IoError when the peer is gone.
Status WriteFrame(Socket* sock, MsgType type,
                  const std::vector<uint8_t>& payload,
                  uint64_t* bytes_out = nullptr);

/// Reads one frame. `bytes_in`, when given, is incremented by the bytes
/// consumed. Errors:
///  - kUnavailable "peer closed": clean EOF between frames;
///  - kIoError: EOF or socket error mid-frame (a torn frame);
///  - kInvalidArgument: oversized length prefix, unknown type byte, or
///    CRC mismatch — the caller cannot trust the stream past this point.
Status ReadFrame(Socket* sock, Frame* out, uint64_t* bytes_in = nullptr);

// --- Payload codecs ---
//
// Encoders append to a Writer; decoders consume from a Reader and fail
// with kInvalidArgument on malformed bytes. Every Get* mirrors a Put*.

void PutQueryOptions(Writer* w, const service::QueryOptions& opts);
Status GetQueryOptions(Reader* r, service::QueryOptions* out);

void PutRelation(Writer* w, const Relation& relation);
Status GetRelation(Reader* r, Relation* out);

void PutQueryResponse(Writer* w, const service::QueryResponse& response);
Status GetQueryResponse(Reader* r, service::QueryResponse* out);

/// Span-tree codec for FETCH_TRACE: every TraceNode field (label,
/// timings, tuple counts, the seven layer counters) plus the children,
/// recursively. The decoder bounds nesting at `kMaxTraceDepth` and fans
/// out at most `kMaxFramePayload` worth of nodes — a hostile payload
/// fails with kInvalidArgument instead of exhausting the stack.
inline constexpr uint32_t kMaxTraceDepth = 100;
void PutTraceNode(Writer* w, const obs::TraceNode& node);
Status GetTraceNode(Reader* r, obs::TraceNode* out, uint32_t depth = 0);

/// Registry-snapshot codec for the binary metrics scrape: counter/gauge
/// values (with their kind), then histograms with full bucket arrays.
void PutRegistrySnapshot(Writer* w,
                         const obs::MetricsRegistry::Snapshot& snapshot);
Status GetRegistrySnapshot(Reader* r, obs::MetricsRegistry::Snapshot* out);

/// The kError payload: `EncodeStatus` bytes. DecodeErrorPayload fails
/// with kInvalidArgument when the payload itself is malformed; otherwise
/// `*out` is the transported (always non-OK on the wire) status.
std::vector<uint8_t> EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(const std::vector<uint8_t>& payload, Status* out);

}  // namespace ccdb::net

#endif  // CCDB_NET_WIRE_H_
