#include "net/replica.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "obs/metric_names.h"
#include "storage/catalog.h"
#include "storage/wal.h"
#include "util/backoff.h"

namespace ccdb::net {

Replica::Replica(service::QueryService* service, ReplicaOptions options)
    : service_(service),
      options_(std::move(options)),
      pool_(&disk_, options_.pool_pages) {}

Result<std::unique_ptr<Replica>> Replica::Start(
    const std::string& leader_host, uint16_t leader_port,
    service::QueryService* service, ReplicaOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("Replica::Start: null follower service");
  }
  auto replica =
      std::unique_ptr<Replica>(new Replica(service, std::move(options)));
  replica->leader_host_ = leader_host;
  replica->leader_port_ = leader_port;
  replica->publish_session_ = service->OpenSession();
  ClientOptions copts;
  copts.client_name = replica->options_.client_name;
  CCDB_ASSIGN_OR_RETURN(std::unique_ptr<Client> client,
                        Client::Connect(leader_host, leader_port, copts));
  {
    MutexLock lock(replica->mu_);
    replica->leader_term_ = client->server_term();
  }
  {
    MutexLock lock(replica->conn_mu_);
    replica->client_ = std::move(client);
  }
  if (!replica->options_.start_paused) {
    replica->sync_thread_ = std::thread([r = replica.get()] { r->SyncLoop(); });
  }
  return replica;
}

Replica::~Replica() { Stop(); }

void Replica::Stop() {
  stop_.store(true);
  {
    // Unblock a sync round parked in the client's recv.
    MutexLock lock(conn_mu_);
    if (client_ != nullptr) client_->Close();
  }
  if (sync_thread_.joinable()) sync_thread_.join();
  if (publish_session_ != 0) {
    // Rolls back a publish transaction a dying sync round left open.
    IgnoreError(service_->CloseSession(publish_session_));
    publish_session_ = 0;
  }
}

void Replica::SyncLoop() {
  BackoffOptions bopts;
  bopts.initial_ms = options_.poll_interval_ms < 1 ? 1
                                                   : options_.poll_interval_ms;
  bopts.max_ms = options_.max_backoff_ms;
  Backoff backoff(bopts);
  while (!stop_.load()) {
    Status synced = SyncOnce();
    // A healthy leader is polled at the configured interval; a failing
    // one at jittered exponentially-growing delays up to the cap.
    double delay_ms = options_.poll_interval_ms;
    if (synced.ok()) {
      backoff.Reset();
    } else {
      delay_ms = backoff.NextDelayMs();
    }
    if (options_.registry != nullptr) {
      options_.registry->SetGauge(obs::names::kReplicaBackoffMs,
                                  synced.ok() ? 0 : delay_ms);
    }
    // 1 ms granularity so Stop() is prompt; CondVar has no timed wait.
    const int ticks = delay_ms < 1 ? 1 : static_cast<int>(delay_ms);
    for (int i = 0; i < ticks && !stop_.load(); ++i) SleepForMs(1);
  }
}

Status Replica::SyncOnce() {
  MutexLock lock(mu_);
  Status synced = SyncLocked();
  if (!synced.ok()) ++sync_failures_;
  PublishGauges();
  return synced;
}

uint64_t Replica::LagBytesLocked() const {
  mu_.AssertHeld();
  const uint64_t lag_batches = leader_next_lsn_ > applied_lsn_ + 1
                                   ? leader_next_lsn_ - applied_lsn_ - 1
                                   : 0;
  if (lag_batches == 0 || batches_applied_ == 0) return 0;
  return lag_batches * (bytes_applied_ / batches_applied_);
}

void Replica::PublishGauges() {
  mu_.AssertHeld();
  if (options_.registry == nullptr) return;
  const uint64_t lag_batches = leader_next_lsn_ > applied_lsn_ + 1
                                   ? leader_next_lsn_ - applied_lsn_ - 1
                                   : 0;
  options_.registry->SetGauge(obs::names::kReplicaLagBatches, lag_batches);
  options_.registry->SetGauge(obs::names::kReplicaLagBytes, LagBytesLocked());
  options_.registry->SetGauge(obs::names::kReplicaLastApplyLsn, applied_lsn_);
  options_.registry->SetGauge(obs::names::kReplicaResyncs, resyncs_);
}

Status Replica::SyncLocked() {
  mu_.AssertHeld();
  if (promoted_) {
    return Status::FailedPrecondition("replica was promoted to leader");
  }
  if (stop_.load()) return Status::Unavailable("replica stopped");
  if (need_reconnect_) {
    ClientOptions copts;
    copts.client_name = options_.client_name;
    // Carrying the highest seen term fences a revived stale leader at
    // the handshake (kFailedPrecondition) instead of mid-shipment.
    copts.known_term = leader_term_;
    Result<std::unique_ptr<Client>> fresh =
        Client::Connect(leader_host_, leader_port_, copts);
    if (!fresh.ok()) return fresh.status();
    leader_term_ = std::max(leader_term_, (*fresh)->server_term());
    MutexLock conn_lock(conn_mu_);
    client_ = std::move(fresh).value();
    need_reconnect_ = false;
  }

  Client* client = nullptr;
  {
    MutexLock conn_lock(conn_mu_);
    client = client_.get();
  }
  if (client == nullptr) return Status::Unavailable("no leader connection");

  const uint64_t from_lsn = need_snapshot_ ? 0 : applied_lsn_ + 1;
  Result<Client::Shipment> shipped = client->ShipWal(from_lsn);
  if (!shipped.ok()) {
    // A transport failure poisons the connection; a service-level error
    // (e.g. the leader has no store) does not.
    if (shipped.status().code() == StatusCode::kIoError ||
        shipped.status().code() == StatusCode::kUnavailable) {
      need_reconnect_ = true;
    }
    return shipped.status();
  }

  if (shipped->leader_term < leader_term_) {
    // A revived stale leader answered: refuse its timeline entirely.
    need_reconnect_ = true;
    if (options_.event_log != nullptr) {
      obs::Event event;
      event.type = "stale_leader";
      event.detail = "shipment under term " +
                     std::to_string(shipped->leader_term) +
                     " refused (replica has seen term " +
                     std::to_string(leader_term_) + ")";
      options_.event_log->Emit(event);
    }
    return Status::FailedPrecondition(
        "shipment from stale leader term " +
        std::to_string(shipped->leader_term));
  }
  leader_term_ = shipped->leader_term;

  bool changed = false;
  if (shipped->is_snapshot) {
    CCDB_RETURN_IF_ERROR(InstallSnapshot(shipped->snapshot));
    changed = true;
  } else {
    for (const std::vector<uint8_t>& record : shipped->records) {
      Status applied = ApplyRecord(record);
      if (!applied.ok()) {
        // The shipment failed the recovery-grade validation (dropped /
        // truncated / corrupted / reordered in flight) or the local
        // apply died partway: the only safe continuation is a fresh
        // bootstrap image.
        need_snapshot_ = true;
        ++resyncs_;
        if (options_.event_log != nullptr) {
          obs::Event event;
          event.type = "replica_resync";
          event.detail = "shipment rejected at lsn " +
                         std::to_string(applied_lsn_ + 1) + ": " +
                         applied.message();
          options_.event_log->Emit(event);
        }
        return applied;
      }
      changed = true;
    }
  }

  leader_next_lsn_ = shipped->leader_next_lsn;
  caught_up_ = applied_lsn_ + 1 == leader_next_lsn_;
  if (changed) CCDB_RETURN_IF_ERROR(PublishCatalog());
  ++completed_syncs_;
  return Status::OK();
}

Status Replica::EnsurePage(PageId page_id) {
  mu_.AssertHeld();
  while (disk_.num_pages() <= page_id) {
    if (disk_.Allocate() == kInvalidPageId) {
      return Status::IoError("replica disk allocation failed");
    }
  }
  return Status::OK();
}

Status Replica::InstallSnapshot(
    const DurableStore::ReplicationSnapshot& snapshot) {
  mu_.AssertHeld();
  for (size_t i = 0; i < snapshot.pages.size(); ++i) {
    CCDB_RETURN_IF_ERROR(EnsurePage(i));
    CCDB_RETURN_IF_ERROR(disk_.Write(i, snapshot.pages[i]));
  }
  catalog_root_ = snapshot.catalog_root;
  applied_lsn_ = snapshot.next_lsn == 0 ? 0 : snapshot.next_lsn - 1;
  need_snapshot_ = false;
  ++snapshots_installed_;
  return Status::OK();
}

Status Replica::ApplyRecord(const std::vector<uint8_t>& record) {
  mu_.AssertHeld();
  ShippedBatch batch;
  CCDB_RETURN_IF_ERROR(ParseShippedBatch(record, applied_lsn_ + 1, &batch));
  for (const WalFrame& frame : batch.frames) {
    CCDB_RETURN_IF_ERROR(EnsurePage(frame.page_id));
    CCDB_RETURN_IF_ERROR(disk_.Write(frame.page_id, frame.image));
  }
  catalog_root_ = batch.catalog_root;
  applied_lsn_ = batch.lsn;
  ++batches_applied_;
  bytes_applied_ += record.size();
  // Seed the follower's dedup table: a client that loses the leader's
  // COMMIT ack and retries against this replica post-promotion gets the
  // original OK instead of a double-apply.
  if (batch.request_id != 0) {
    service_->RecordCommittedRequest(batch.request_id);
  }
  return Status::OK();
}

Status Replica::PublishCatalog() {
  mu_.AssertHeld();
  // The disk changed under the pool: drop every cached page first.
  pool_.Clear();
  Database db;
  if (catalog_root_ != kInvalidPageId) {
    CCDB_ASSIGN_OR_RETURN(db, LoadDatabase(&pool_, catalog_root_));
  }
  // Stage the whole catalog delta in a follower-service transaction and
  // commit it as ONE snapshot publication: a concurrent reader sees the
  // full pre-sync catalog or the full post-sync catalog, never a
  // half-applied mix (regression: torn follower reads mid-publish).
  CCDB_RETURN_IF_ERROR(service_->Begin(publish_session_));
  Status staged = Status::OK();
  const std::vector<std::string> names = db.Names();
  for (const std::string& name : names) {
    auto relation = db.Get(name);
    if (!relation.ok()) {
      staged = relation.status();
      break;
    }
    staged = service_->ReplaceRelation(publish_session_, name, **relation);
    if (!staged.ok()) break;
  }
  if (staged.ok()) {
    // Drop relations that vanished from the leader's catalog.
    for (const std::string& name : published_) {
      if (!std::binary_search(names.begin(), names.end(), name)) {
        staged = service_->DropRelation(publish_session_, name);
        if (!staged.ok()) break;
      }
    }
  }
  if (!staged.ok()) {
    IgnoreError(service_->Rollback(publish_session_));
    return staged;
  }
  // The replica is the follower catalog's only writer, so this commit
  // cannot lose a first-committer-wins race.
  CCDB_RETURN_IF_ERROR(service_->Commit(publish_session_));
  published_ = std::set<std::string>(names.begin(), names.end());
  return Status::OK();
}

Result<Replica::Promoted> Replica::Promote() {
  // Wind down continuous sync first: unblock an in-flight round parked
  // in the client's recv, then join the thread.
  stop_.store(true);
  {
    MutexLock lock(conn_mu_);
    if (client_ != nullptr) client_->Close();
  }
  if (sync_thread_.joinable()) sync_thread_.join();

  MutexLock lock(mu_);
  if (promoted_) {
    Promoted out;
    out.term = promoted_term_;
    out.store = promoted_store_.get();
    return out;
  }

  // Final best-effort drain: a still-reachable old leader gets one last
  // chance to hand over batches committed since the last poll; a dead
  // one just fails the connect and we promote from what we have.
  {
    ClientOptions copts;
    copts.client_name = options_.client_name;
    copts.known_term = leader_term_;
    Result<std::unique_ptr<Client>> fresh =
        Client::Connect(leader_host_, leader_port_, copts);
    if (fresh.ok()) {
      leader_term_ = std::max(leader_term_, (*fresh)->server_term());
      {
        MutexLock conn_lock(conn_mu_);
        client_ = std::move(fresh).value();
      }
      need_reconnect_ = false;
      // The sync thread is joined, so re-arming the stop flag around the
      // drain races with nothing.
      stop_.store(false);
      IgnoreError(SyncLocked());
      stop_.store(true);
    }
  }

  if (need_snapshot_ && catalog_root_ == kInvalidPageId &&
      applied_lsn_ == 0 && snapshots_installed_ == 0) {
    return Status::FailedPrecondition(
        "replica never bootstrapped: nothing to promote");
  }

  CCDB_ASSIGN_OR_RETURN(promoted_store_,
                        DurableStore::CreateAtRoot(&disk_, catalog_root_));
  // Strictly above every term this replica has followed; the floor of 2
  // out-terms a seed leader that never announced (default term 1).
  const uint64_t term = std::max<uint64_t>(leader_term_ + 1, 2);
  service_->AttachStore(promoted_store_.get());
  promoted_ = true;
  promoted_term_ = term;
  if (options_.event_log != nullptr) {
    obs::Event event;
    event.type = "promoted";
    event.detail = "follower promoted at lsn " + std::to_string(applied_lsn_) +
                   ", serving writes under term " + std::to_string(term);
    options_.event_log->Emit(event);
  }
  Promoted out;
  out.term = term;
  out.store = promoted_store_.get();
  return out;
}

Replica::Stats Replica::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.applied_lsn = applied_lsn_;
  out.leader_next_lsn = leader_next_lsn_;
  out.lag_batches = leader_next_lsn_ > applied_lsn_ + 1
                        ? leader_next_lsn_ - applied_lsn_ - 1
                        : 0;
  out.lag_bytes = LagBytesLocked();
  out.bytes_applied = bytes_applied_;
  out.batches_applied = batches_applied_;
  out.snapshots_installed = snapshots_installed_;
  out.resyncs = resyncs_;
  out.sync_failures = sync_failures_;
  out.caught_up = caught_up_;
  return out;
}

Status Replica::WaitCaughtUp(double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(
                            static_cast<int64_t>(timeout_ms * 1000));
  uint64_t entry_syncs = 0;
  {
    MutexLock lock(mu_);
    entry_syncs = completed_syncs_;
  }
  while (true) {
    {
      MutexLock lock(mu_);
      // Only trust a verdict from a sync round that ran entirely after
      // this call began: a `caught_up_` latched by an earlier round says
      // nothing about batches the leader committed since. (SyncOnce holds
      // mu_ for the whole round, so a counter advance observed here means
      // that round both started and finished after our entry read.)
      if (completed_syncs_ > entry_syncs && caught_up_ && !need_snapshot_) {
        return Status::OK();
      }
    }
    if (options_.start_paused) {
      IgnoreError(SyncOnce());
    } else {
      SleepForMs(1);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("replica did not catch up in " +
                                      std::to_string(timeout_ms) + " ms");
    }
  }
}

}  // namespace ccdb::net
