#include "net/server.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "obs/metric_names.h"
#include "storage/serde.h"
#include "util/backoff.h"

namespace ccdb::net {


Server::Server(service::QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  term_.store(options_.term, std::memory_order_release);
  read_only_.store(options_.read_only, std::memory_order_release);
  store_.store(options_.store, std::memory_order_release);
  conns_total_ = registry_.GetCounter(obs::names::kNetConnectionsTotal);
  bytes_in_ = registry_.GetCounter(obs::names::kNetBytesIn);
  bytes_out_ = registry_.GetCounter(obs::names::kNetBytesOut);
  frames_in_ = registry_.GetCounter(obs::names::kNetFramesIn);
  protocol_errors_ = registry_.GetCounter(obs::names::kNetProtocolErrors);
  ship_batches_ = registry_.GetCounter(obs::names::kNetShipBatches);
  ship_snapshots_ = registry_.GetCounter(obs::names::kNetShipSnapshots);
  registry_.SetGauge(obs::names::kNetConnectionsOpen, 0);
  registry_.SetGauge(obs::names::kNetTerm, static_cast<double>(options_.term));
}

void Server::Promote(uint64_t term, DurableStore* store) {
  if (!read_only_.load(std::memory_order_acquire)) return;
  store_.store(store, std::memory_order_release);
  term_.store(term, std::memory_order_release);
  read_only_.store(false, std::memory_order_release);
  registry_.SetGauge(obs::names::kNetTerm, static_cast<double>(term));
  if (options_.event_log != nullptr) {
    obs::Event event;
    event.type = "promoted";
    event.detail = "serving writes under term " + std::to_string(term);
    options_.event_log->Emit(event);
  }
}

Result<std::unique_ptr<Server>> Server::Start(service::QueryService* service,
                                              ServerOptions options) {
  if (service == nullptr) {
    return Status::InvalidArgument("Server::Start: null service");
  }
  auto server =
      std::unique_ptr<Server>(new Server(service, std::move(options)));
  CCDB_ASSIGN_OR_RETURN(server->listener_,
                        Listener::Bind(server->options_.port));
  server->port_ = server->listener_.port();
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      // A previous Shutdown already drained; nothing can have restarted.
      if (!accept_thread_.joinable() && threads_.empty()) return;
    }
    stopping_ = true;
  }
  listener_.Close();  // unblocks Accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> to_join;
  {
    MutexLock lock(mu_);
    // Unblock every connection thread parked in RecvAll/SendAll; the
    // socket fds stay owned (and eventually closed) by their threads.
    for (auto& [id, sock] : live_) sock->ShutdownBoth();
    to_join.swap(threads_);
  }
  for (auto& [id, thread] : to_join) {
    if (thread.joinable()) thread.join();
  }
}

size_t Server::open_connections() const {
  MutexLock lock(mu_);
  return live_.size();
}

std::string Server::MetricsText() const {
  return service_->Metrics().ToString() + "\n--- net ---\n" +
         registry_.ToString();
}

obs::MetricsRegistry::Snapshot Server::MergedSnapshot() const {
  obs::MetricsRegistry::Snapshot merged = service_->MetricsSnapshot();
  obs::MetricsRegistry::Snapshot net = registry_.TakeSnapshot();
  // The two registries declare disjoint name sets (service.* vs net.*),
  // so a plain append + re-sort is a correct merge.
  merged.values.insert(merged.values.end(), net.values.begin(),
                       net.values.end());
  std::sort(merged.values.begin(), merged.values.end());
  merged.gauges.insert(net.gauges.begin(), net.gauges.end());
  merged.histograms.insert(merged.histograms.end(),
                           std::make_move_iterator(net.histograms.begin()),
                           std::make_move_iterator(net.histograms.end()));
  return merged;
}

void Server::AcceptLoop() {
  while (true) {
    ReapFinished();
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed: drain begins
    Socket sock = std::move(accepted).value();

    bool refuse = false;
    uint64_t conn_id = 0;
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      if (live_.size() >= options_.max_connections) {
        refuse = true;
      } else {
        conn_id = next_conn_id_++;
      }
    }
    if (refuse) {
      IgnoreError(SendError(
          &sock,
          Status::Unavailable("too many connections").WithRetryAfter(50)));
      continue;  // sock closes on scope exit
    }

    conns_total_->Increment();
    std::thread thread([this, conn_id, s = std::move(sock)]() mutable {
      ServeConnection(conn_id, std::move(s));
    });
    // Always registered: Shutdown joins the accept thread before it swaps
    // threads_ out, so this entry is never missed.
    MutexLock lock(mu_);
    threads_.emplace(conn_id, std::move(thread));
  }
}

void Server::ReapFinished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mu_);
    for (uint64_t id : finished_) {
      auto it = threads_.find(id);
      if (it != threads_.end()) {
        done.push_back(std::move(it->second));
        threads_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

Status Server::SendError(Socket* sock, const Status& error) {
  uint64_t sent = 0;
  Status out =
      WriteFrame(sock, MsgType::kError, EncodeErrorPayload(error), &sent);
  bytes_out_->Add(sent);
  return out;
}

void Server::ServeConnection(uint64_t conn_id, Socket sock) {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      finished_.push_back(conn_id);
      return;
    }
    live_.emplace(conn_id, &sock);
    registry_.SetGauge(obs::names::kNetConnectionsOpen, live_.size());
  }
  if (options_.event_log != nullptr) {
    obs::Event event;
    event.type = "conn_open";
    event.conn_id = conn_id;
    options_.event_log->Emit(event);
  }

  Conn conn;
  while (true) {
    Frame frame;
    uint64_t got = 0;
    Status read = ReadFrame(&sock, &frame, &got);
    bytes_in_->Add(got);
    if (!read.ok()) {
      if (read.code() == StatusCode::kInvalidArgument) {
        // Oversized, unknown-type, or CRC-corrupt frame: the stream can
        // no longer be trusted to be frame-aligned — reply (best effort)
        // and drop the connection.
        protocol_errors_->Increment();
        IgnoreError(SendError(&sock, read));
      }
      break;  // clean EOF, torn frame, or drain
    }
    frames_in_->Increment();
    bool close_conn = false;
    if (!Dispatch(&conn, &sock, frame, &close_conn).ok()) break;
    if (close_conn) break;
  }

  // Reclaim the session: cancel what the client abandoned mid-flight.
  if (conn.helloed) {
    for (auto& [query_id, future] : conn.pending) {
      IgnoreError(service_->Cancel(conn.session, query_id));
    }
    IgnoreError(service_->CloseSession(conn.session));
  }
  if (options_.event_log != nullptr) {
    obs::Event event;
    event.type = "conn_close";
    event.conn_id = conn_id;
    event.session = conn.session;
    options_.event_log->Emit(event);
  }

  MutexLock lock(mu_);
  live_.erase(conn_id);
  registry_.SetGauge(obs::names::kNetConnectionsOpen, live_.size());
  finished_.push_back(conn_id);
}

Status Server::Dispatch(Conn* conn, Socket* sock, const Frame& frame,
                        bool* close_conn) {
  // Local helper: send one response frame, metering bytes out.
  auto reply = [&](MsgType type, const std::vector<uint8_t>& payload) {
    uint64_t sent = 0;
    Status out = WriteFrame(sock, type, payload, &sent);
    bytes_out_->Add(sent);
    return out;
  };

  // A request payload that does not decode is the peer's fault, not I/O:
  // surface it as kInvalidArgument no matter what code the decoder used
  // (the serde Reader reports underflow as kIoError, which over the wire
  // would read as server-side disk trouble).
  auto bad_payload = [&](const Status& parse) {
    protocol_errors_->Increment();
    return SendError(sock, Status::InvalidArgument(
                               std::string("malformed ") +
                               MsgTypeName(frame.type) +
                               " payload: " + parse.message()));
  };

  if (static_cast<uint8_t>(frame.type) >=
      static_cast<uint8_t>(MsgType::kOk)) {
    protocol_errors_->Increment();
    *close_conn = true;
    return SendError(sock, Status::InvalidArgument(
                               std::string("response-type frame ") +
                               MsgTypeName(frame.type) + " sent as request"));
  }

  if (!conn->helloed && frame.type != MsgType::kHello) {
    return SendError(
        sock, Status::InvalidArgument(std::string("HELLO required before ") +
                                      MsgTypeName(frame.type)));
  }

  Reader r(frame.payload);
  switch (frame.type) {
    case MsgType::kHello: {
      if (conn->helloed) {
        return SendError(sock, Status::InvalidArgument("duplicate HELLO"));
      }
      uint32_t version = 0;
      std::string client_name;
      uint64_t client_term = 0;
      Status parsed = [&]() -> Status {
        CCDB_ASSIGN_OR_RETURN(version, r.GetU32());
        CCDB_ASSIGN_OR_RETURN(client_name, r.GetString());
        // Trailing term is optional (a bare v2 HELLO reads as term 0) so
        // hand-built handshakes stay valid.
        if (r.remaining() >= 8) {
          CCDB_ASSIGN_OR_RETURN(client_term, r.GetU64());
        }
        return Status::OK();
      }();
      if (!parsed.ok()) return bad_payload(parsed);
      if (version != kProtocolVersion) {
        *close_conn = true;
        if (options_.event_log != nullptr) {
          obs::Event event;
          event.type = "hello_skew";
          event.detail = "client '" + client_name + "' speaks version " +
                         std::to_string(version) + ", server speaks " +
                         std::to_string(kProtocolVersion);
          options_.event_log->Emit(event);
        }
        return SendError(
            sock, Status::Unsupported(
                      "protocol version " + std::to_string(version) +
                      " (server speaks " + std::to_string(kProtocolVersion) +
                      ")"));
      }
      const uint64_t term = term_.load(std::memory_order_acquire);
      const bool read_only = read_only_.load(std::memory_order_acquire);
      if (!read_only && client_term > term) {
        // Fencing: the client has followed a newer leader; this writable
        // server is a revived stale leader and must not accept its writes.
        *close_conn = true;
        if (options_.event_log != nullptr) {
          obs::Event event;
          event.type = "stale_leader";
          event.detail = "client '" + client_name + "' knows term " +
                         std::to_string(client_term) +
                         ", this leader serves term " + std::to_string(term);
          options_.event_log->Emit(event);
        }
        return SendError(
            sock, Status::FailedPrecondition(
                      "stale leader term " + std::to_string(term) +
                      " (client has seen term " + std::to_string(client_term) +
                      ")"));
      }
      conn->session = service_->OpenSession();
      conn->helloed = true;
      Writer w;
      w.PutU32(kProtocolVersion);
      w.PutU8(read_only ? 1 : 0);
      w.PutU64(conn->session);
      w.PutString(options_.server_name);
      w.PutU64(term);
      return reply(MsgType::kHelloOk, w.buffer());
    }

    case MsgType::kQuery: {
      std::string script;
      service::QueryOptions opts;
      Status parsed = [&]() -> Status {
        CCDB_ASSIGN_OR_RETURN(script, r.GetString());
        return GetQueryOptions(&r, &opts);
      }();
      if (!parsed.ok()) return bad_payload(parsed);
      Result<service::QueryResponse> result =
          service_->Execute(conn->session, script, std::move(opts));
      if (!result.ok()) return SendError(sock, result.status());
      Writer w;
      PutQueryResponse(&w, *result);
      return reply(MsgType::kResult, w.buffer());
    }

    case MsgType::kSubmit: {
      std::string script;
      service::QueryOptions opts;
      Status parsed = [&]() -> Status {
        CCDB_ASSIGN_OR_RETURN(script, r.GetString());
        return GetQueryOptions(&r, &opts);
      }();
      if (!parsed.ok()) return bad_payload(parsed);
      Result<service::Submission> submitted =
          service_->Submit(conn->session, std::move(script), std::move(opts));
      if (!submitted.ok()) return SendError(sock, submitted.status());
      conn->pending[submitted->query_id] = std::move(submitted->future);
      Writer w;
      w.PutU64(submitted->query_id);
      return reply(MsgType::kSubmitted, w.buffer());
    }

    case MsgType::kWait: {
      Result<uint64_t> id = r.GetU64();
      if (!id.ok()) return bad_payload(id.status());
      auto it = conn->pending.find(*id);
      if (it == conn->pending.end()) {
        return SendError(
            sock, Status::NotFound("query id " + std::to_string(*id) +
                                   " is not pending on this connection"));
      }
      std::future<Result<service::QueryResponse>> future =
          std::move(it->second);
      conn->pending.erase(it);
      Result<service::QueryResponse> result = future.get();
      if (!result.ok()) return SendError(sock, result.status());
      Writer w;
      PutQueryResponse(&w, *result);
      return reply(MsgType::kResult, w.buffer());
    }

    case MsgType::kCancel: {
      Result<uint64_t> id = r.GetU64();
      if (!id.ok()) return bad_payload(id.status());
      Status cancelled = service_->Cancel(conn->session, *id);
      if (!cancelled.ok()) return SendError(sock, cancelled);
      return reply(MsgType::kOk, {});
    }

    case MsgType::kCheckpoint: {
      if (read_only_.load(std::memory_order_acquire)) {
        return SendError(sock,
                         Status::Unavailable("read-only replica: CHECKPOINT "
                                             "must run on the leader")
                             .WithRetryAfter(50));
      }
      Status checkpointed = service_->Checkpoint();
      if (!checkpointed.ok()) return SendError(sock, checkpointed);
      return reply(MsgType::kOk, {});
    }

    case MsgType::kMetrics: {
      Writer w;
      w.PutString(MetricsText());
      return reply(MsgType::kMetricsText, w.buffer());
    }

    case MsgType::kTrace: {
      Result<std::string> script = r.GetString();
      if (!script.ok()) return bad_payload(script.status());
      Result<service::TraceReport> report =
          service_->Trace(conn->session, *script);
      if (!report.ok()) return SendError(sock, report.status());
      Writer w;
      w.PutU8(report->used_plan ? 1 : 0);
      w.PutString(report->plan_text);
      w.PutString(report->root.ToString());
      PutQueryResponse(&w, report->response);
      return reply(MsgType::kTraceResult, w.buffer());
    }

    case MsgType::kFetchTrace: {
      std::string script;
      uint64_t trace_id = 0;
      Status parsed = [&]() -> Status {
        CCDB_ASSIGN_OR_RETURN(script, r.GetString());
        CCDB_ASSIGN_OR_RETURN(trace_id, r.GetU64());
        return Status::OK();
      }();
      if (!parsed.ok()) return bad_payload(parsed);
      Result<service::TraceReport> report =
          service_->Trace(conn->session, script, trace_id);
      if (!report.ok()) return SendError(sock, report.status());
      Writer w;
      w.PutU8(report->used_plan ? 1 : 0);
      w.PutString(report->plan_text);
      w.PutU64(report->trace_id);
      PutTraceNode(&w, report->root);
      PutQueryResponse(&w, report->response);
      return reply(MsgType::kTraceTree, w.buffer());
    }

    case MsgType::kMetricsSnapshot: {
      Writer w;
      PutRegistrySnapshot(&w, MergedSnapshot());
      return reply(MsgType::kMetricsSnapshotData, w.buffer());
    }

    case MsgType::kListRelations: {
      const std::vector<std::string> names =
          service_->VisibleNames(conn->session);
      Writer w;
      w.PutU32(static_cast<uint32_t>(names.size()));
      for (const std::string& name : names) w.PutString(name);
      return reply(MsgType::kNameList, w.buffer());
    }

    case MsgType::kGetRelation: {
      Result<std::string> name = r.GetString();
      if (!name.ok()) return bad_payload(name.status());
      Result<Relation> relation = service_->GetRelation(conn->session, *name);
      if (!relation.ok()) return SendError(sock, relation.status());
      Writer w;
      PutRelation(&w, *relation);
      return reply(MsgType::kRelationData, w.buffer());
    }

    case MsgType::kLoadRelation: {
      if (read_only_.load(std::memory_order_acquire)) {
        return SendError(sock, Status::Unavailable(
                                   "read-only replica: writes must go to "
                                   "the leader")
                                   .WithRetryAfter(50));
      }
      std::string name;
      Relation relation;
      Status parsed = [&]() -> Status {
        CCDB_ASSIGN_OR_RETURN(name, r.GetString());
        return GetRelation(&r, &relation);
      }();
      if (!parsed.ok()) return bad_payload(parsed);
      // Session-scoped: a load inside the client's BEGIN...COMMIT stages
      // with the transaction instead of autocommitting past it.
      Status loaded =
          service_->ReplaceRelation(conn->session, name, std::move(relation));
      if (!loaded.ok()) return SendError(sock, loaded);
      return reply(MsgType::kOk, {});
    }

    case MsgType::kPromote: {
      if (!read_only_.load(std::memory_order_acquire)) {
        // Already the leader: echo the current term (idempotent — the
        // client that retried a PROMOTE after a lost ack sees success).
        Writer w;
        w.PutU64(term_.load(std::memory_order_acquire));
        return reply(MsgType::kPromoted, w.buffer());
      }
      if (!options_.promote_handler) {
        return SendError(sock, Status::Unavailable(
                                   "this replica has no promotion handler "
                                   "attached"));
      }
      Result<Promotion> promoted = options_.promote_handler();
      if (!promoted.ok()) return SendError(sock, promoted.status());
      Promote(promoted->term, promoted->store);
      Writer w;
      w.PutU64(promoted->term);
      return reply(MsgType::kPromoted, w.buffer());
    }

    case MsgType::kShipWal: {
      Result<uint64_t> from_lsn = r.GetU64();
      if (!from_lsn.ok()) return bad_payload(from_lsn.status());
      return HandleShipWal(sock, *from_lsn);
    }

    default:
      // Unreachable: IsKnownMsgType gated the type byte and responses
      // were rejected above.
      protocol_errors_->Increment();
      *close_conn = true;
      return SendError(sock, Status::Internal("unhandled request type"));
  }
}

Status Server::SendSnapshot(Socket* sock) {
  Result<DurableStore::ReplicationSnapshot> snapshot =
      store_.load(std::memory_order_acquire)->SnapshotForReplica();
  if (!snapshot.ok()) return SendError(sock, snapshot.status());
  const size_t image_bytes = snapshot->pages.size() * kPageSize;
  if (image_bytes + 64 > kMaxFramePayload) {
    return SendError(sock, Status::ResourceExhausted(
                               "snapshot of " +
                               std::to_string(snapshot->pages.size()) +
                               " pages exceeds the frame bound"));
  }
  Writer w;
  w.PutU64(snapshot->next_lsn);
  w.PutU64(snapshot->catalog_root);
  w.PutU32(static_cast<uint32_t>(snapshot->pages.size()));
  for (const Page& page : snapshot->pages) {
    w.PutBytes(page.data.data(), kPageSize);
  }
  w.PutU64(term_.load(std::memory_order_acquire));
  ship_snapshots_->Increment();
  uint64_t sent = 0;
  Status out = WriteFrame(sock, MsgType::kSnapshot, w.buffer(), &sent);
  bytes_out_->Add(sent);
  return out;
}

Status Server::HandleShipWal(Socket* sock, uint64_t from_lsn) {
  DurableStore* store = store_.load(std::memory_order_acquire);
  if (store == nullptr) {
    return SendError(sock, Status::Unavailable(
                               "no durable store attached: this server "
                               "cannot ship its WAL"));
  }
  if (from_lsn == 0) return SendSnapshot(sock);

  std::vector<std::vector<uint8_t>> records;
  uint64_t next_lsn = 0;
  Status read = store->ReadShipment(from_lsn, &records, &next_lsn);
  if (read.code() == StatusCode::kOutOfRange) {
    // The log no longer covers the follower's position (a checkpoint
    // truncated it, or the follower is from another timeline): the only
    // correct answer is a fresh bootstrap image.
    return SendSnapshot(sock);
  }
  if (!read.ok()) return SendError(sock, read);

  // Fault injection (tests): each shipped record has a server-lifetime
  // 1-based sequence number the fault indexes match against.
  const ShipFaults& faults = options_.ship_faults;
  std::vector<std::vector<uint8_t>*> to_send;
  to_send.reserve(records.size());
  for (std::vector<uint8_t>& record : records) to_send.push_back(&record);
  bool cut = false;
  for (size_t i = 0; i < to_send.size(); ++i) {
    const uint64_t seq = ship_seq_.fetch_add(1) + 1;
    if (faults.drop_at == seq) {
      to_send.erase(to_send.begin() + static_cast<ptrdiff_t>(i));
      --i;
      continue;
    }
    if (faults.cut_at == seq) {
      // Leader "crash" mid-shipment: everything from this batch on is
      // lost and the connection dies without a SHIP_END.
      to_send.resize(i);
      cut = true;
      break;
    }
    if (faults.truncate_at == seq) {
      to_send[i]->resize(to_send[i]->size() / 2);
    }
    if (faults.corrupt_at == seq && !to_send[i]->empty()) {
      (*to_send[i])[to_send[i]->size() / 2] ^= 0x5a;
    }
    if (faults.delay_at == seq && faults.delay_ms > 0) {
      SleepForMs(faults.delay_ms);
    }
    if (faults.reorder_at == seq && i + 1 < to_send.size()) {
      std::swap(to_send[i], to_send[i + 1]);
    }
  }

  for (const std::vector<uint8_t>* record : to_send) {
    ship_batches_->Increment();
    uint64_t sent = 0;
    Status wrote = WriteFrame(sock, MsgType::kWalBatch, *record, &sent);
    bytes_out_->Add(sent);
    CCDB_RETURN_IF_ERROR(wrote);
  }
  if (cut) {
    sock->ShutdownBoth();
    return Status::Unavailable("ship cut by fault injection");
  }
  Writer w;
  w.PutU64(next_lsn);
  w.PutU64(term_.load(std::memory_order_acquire));
  uint64_t sent = 0;
  Status out = WriteFrame(sock, MsgType::kShipEnd, w.buffer(), &sent);
  bytes_out_->Add(sent);
  return out;
}

}  // namespace ccdb::net
