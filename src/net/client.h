#ifndef CCDB_NET_CLIENT_H_
#define CCDB_NET_CLIENT_H_

/// \file client.h
/// The blocking client library for the CCDB wire protocol.
///
/// One `Client` is one connection and therefore one server-side session:
/// step results (`R0 = ...`) persist across calls and queries issued
/// through one client are serialized in program order, exactly like an
/// in-process `QueryService` session. Every method is a blocking RPC
/// returning the server's `Status` verbatim — a governance shed arrives
/// as `kUnavailable` with its `retry_after_ms()` hint intact, a deadline
/// trip as `kDeadlineExceeded`, and so on — so remote and in-process
/// callers are written identically.
///
/// Calls are serialized on an internal mutex (the protocol is strict
/// request/response per connection); use one Client per thread for
/// parallelism. Any stream failure poisons the connection (every later
/// call fails fast), but the status CODE tells the caller what a fresh
/// connection would buy: transport failures — the peer vanished, a clean
/// EOF, a recv timeout, a torn frame — surface as the *retryable*
/// kUnavailable, while protocol failures — CRC mismatch, version skew,
/// an out-of-phase response stream — surface as the *fatal*
/// kInvalidArgument / kUnsupported (`Client::Retryable` encodes the
/// taxonomy). `ResilientClient` builds reconnect-and-retry on exactly
/// this split.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/query_service.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb::net {

/// Construction-time knobs of a Client.
struct ClientOptions {
  std::string client_name = "ccdb-client";
  /// Highest leader term this client has observed (0 = none). Carried in
  /// HELLO; a *writable* server whose own term is older refuses the
  /// handshake with kFailedPrecondition — the fencing that stops a
  /// revived stale leader from accepting writes from clients that
  /// already followed a promotion.
  uint64_t known_term = 0;
};

/// A blocking wire-protocol client. Thread-safe; calls serialize.
class Client {
 public:
  /// Connects and performs the HELLO handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});

  ~Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Query execution ---

  /// Executes a step-script on the server (QUERY).
  Result<service::QueryResponse> Execute(const std::string& script,
                                         const service::QueryOptions& opts = {})
      CCDB_EXCLUDES(mu_);

  /// Enqueues a script (SUBMIT); returns the query id to Wait/Cancel by.
  Result<uint64_t> Submit(const std::string& script,
                          const service::QueryOptions& opts = {})
      CCDB_EXCLUDES(mu_);

  /// Blocks until a SUBMITted query finishes (WAIT).
  Result<service::QueryResponse> Wait(uint64_t query_id) CCDB_EXCLUDES(mu_);

  /// Requests cancellation of a SUBMITted query (CANCEL).
  Status Cancel(uint64_t query_id) CCDB_EXCLUDES(mu_);

  // --- Admin / observability ---

  Status Checkpoint() CCDB_EXCLUDES(mu_);
  Result<std::string> MetricsText() CCDB_EXCLUDES(mu_);

  /// PROMOTE: asks a replica server to become the leader and returns the
  /// new leader term. Idempotent against an already-writable server (it
  /// echoes its current term). The client's own notion of the server's
  /// term is updated on success.
  Result<uint64_t> Promote() CCDB_EXCLUDES(mu_);

  /// The server-side EXPLAIN ANALYZE view of one script (TRACE).
  struct RemoteTrace {
    bool used_plan = false;
    std::string plan_text;
    std::string trace_text;
    service::QueryResponse response;
  };
  Result<RemoteTrace> Trace(const std::string& script) CCDB_EXCLUDES(mu_);

  /// FETCH_TRACE: like Trace, but the span tree arrives structured (every
  /// TraceNode field) instead of pre-rendered, stamped with the
  /// client-assigned `trace_id` — so a shell's `\trace` over `\connect`
  /// renders and aggregates the remote tree exactly like a local one.
  struct RemoteTraceTree {
    bool used_plan = false;
    std::string plan_text;
    uint64_t trace_id = 0;   ///< echoed back by the server
    obs::TraceNode root;
    service::QueryResponse response;
  };
  Result<RemoteTraceTree> FetchTrace(const std::string& script,
                                     uint64_t trace_id) CCDB_EXCLUDES(mu_);

  /// METRICS_SNAPSHOT: the server's merged service+net registry snapshot
  /// (counter kinds and full histogram buckets) — the structured scrape
  /// the shell's `\top` polls.
  Result<obs::MetricsRegistry::Snapshot> MetricsSnapshot()
      CCDB_EXCLUDES(mu_);

  // --- Catalog access ---

  Result<std::vector<std::string>> ListRelations() CCDB_EXCLUDES(mu_);
  Result<Relation> GetRelation(const std::string& name) CCDB_EXCLUDES(mu_);
  Status LoadRelation(const std::string& name, const Relation& relation)
      CCDB_EXCLUDES(mu_);

  // --- Replication (follower side; used by net::Replica) ---

  /// One SHIP_WAL round: either a stream of raw committed batch records
  /// (`records`) or a full bootstrap snapshot, plus the leader's next
  /// LSN (what to ask for next).
  struct Shipment {
    bool is_snapshot = false;
    DurableStore::ReplicationSnapshot snapshot;  ///< when is_snapshot
    std::vector<std::vector<uint8_t>> records;   ///< otherwise
    uint64_t leader_next_lsn = 0;
    uint64_t leader_term = 0;  ///< the shipping server's leader term
  };
  Result<Shipment> ShipWal(uint64_t from_lsn) CCDB_EXCLUDES(mu_);

  // --- Connection state ---

  /// True when the server declared itself a read-only replica at HELLO.
  bool server_read_only() const { return server_read_only_; }
  const std::string& server_name() const { return server_name_; }
  uint64_t session_id() const { return session_id_; }

  /// The server's leader term as of the last frame that carried one
  /// (HELLO_OK, SHIP_END, SNAPSHOT, PROMOTED).
  uint64_t server_term() const {
    return server_term_.load(std::memory_order_relaxed);
  }

  /// True once a stream failure has poisoned this connection — every
  /// later call fails fast; only a fresh Connect helps. (What
  /// ResilientClient keys its reconnects on.)
  bool poisoned() const { return poisoned_.load(std::memory_order_relaxed); }

  /// The retry taxonomy: true when `status` is a transport-level failure
  /// — kUnavailable (peer closed, recv timeout, a torn frame, shedding)
  /// — where a reconnect (or plain backoff) plus retry may succeed.
  /// Protocol-fatal failures (kInvalidArgument CRC mismatch / malformed
  /// frames, kUnsupported version skew, kFailedPrecondition fencing)
  /// return false: retrying them verbatim cannot help.
  static bool Retryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

  /// Test hook: arms a deterministic fault plan on the underlying socket
  /// (the framing layer writes one contiguous buffer per frame, so send
  /// index N is frame N).
  void SetSocketFaults(const SocketFaults& faults) CCDB_EXCLUDES(mu_);

  /// Bounds every reply wait on this connection: a swallowed reply frame
  /// surfaces as the retryable kUnavailable ("recv timeout") instead of
  /// blocking forever. 0 restores unbounded waits.
  Status SetRecvTimeout(double ms) CCDB_EXCLUDES(mu_);

  /// Shuts the connection down; every later call fails with kUnavailable.
  /// Safe to call from any thread, including while another thread is
  /// blocked inside an RPC on this client — the shutdown unblocks it with
  /// a transport error. (This is how net::Replica::Stop interrupts an
  /// in-flight SHIP_WAL round; Close deliberately does NOT take mu_.)
  void Close();

 private:
  Client() = default;

  /// Sends one request and reads one response frame. A `kError` response
  /// is decoded and returned as its transported Status; a response whose
  /// type is not `expect` is a protocol error and poisons the connection.
  Result<Frame> Call(MsgType request, const std::vector<uint8_t>& payload,
                     MsgType expect) CCDB_REQUIRES(mu_);
  Status CheckLive() CCDB_REQUIRES(mu_);

  // protocol-lock: serializes whole RPCs — one request/response exchange
  // per holder — rather than guarding fields (sock_'s discipline is
  // documented below).
  mutable Mutex mu_{"net.client"};
  // Written once at Connect (before the client is shared), then used by
  // RPCs under mu_. Close() touches it WITHOUT mu_: Socket::ShutdownBoth
  // is the one operation that is safe against a concurrent blocked
  // recv/send on the same fd, and Close relies on exactly that to
  // interrupt an in-flight call. Nothing else may bypass mu_.
  Socket sock_;
  std::atomic<bool> poisoned_{false};

  // Fixed at handshake time.
  bool server_read_only_ = false;
  std::string server_name_;
  uint64_t session_id_ = 0;
  /// Latest leader term seen on this connection (atomic: ShipWal updates
  /// it under mu_ while server_term() reads it from other threads).
  std::atomic<uint64_t> server_term_{0};
};

}  // namespace ccdb::net

#endif  // CCDB_NET_CLIENT_H_
