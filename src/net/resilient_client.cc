#include "net/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <type_traits>
#include <utility>

namespace ccdb::net {

ResilientClient::ResilientClient(std::string host, uint16_t port,
                                 ResilientClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      backoff_(BackoffOptions{options.initial_backoff_ms,
                              options.max_backoff_ms, options.seed}),
      request_ids_(options.seed ^ 0x9e3779b97f4a7c15ULL) {}

Result<std::unique_ptr<ResilientClient>> ResilientClient::Connect(
    const std::string& host, uint16_t port, ResilientClientOptions options) {
  auto client = std::unique_ptr<ResilientClient>(
      new ResilientClient(host, port, std::move(options)));
  MutexLock lock(client->mu_);
  // The identity op: establishes the first connection under the same
  // deadline/backoff policy every later call gets.
  Result<Client*> live =
      client->Retry([](Client* c) -> Result<Client*> { return c; });
  if (!live.ok()) return live.status();
  return client;
}

Result<Client*> ResilientClient::Ensure() {
  mu_.AssertHeld();
  if (client_ != nullptr && !client_->poisoned()) return client_.get();
  client_.reset();
  ClientOptions copts;
  copts.client_name = options_.client_name;
  copts.known_term = highest_term_;
  CCDB_ASSIGN_OR_RETURN(client_, Client::Connect(host_, port_, copts));
  if (options_.recv_timeout_ms > 0) {
    CCDB_RETURN_IF_ERROR(client_->SetRecvTimeout(options_.recv_timeout_ms));
  }
  client_->SetSocketFaults(options_.socket_faults);
  // Counts every successful dial; the accessor reports dials - 1 so the
  // initial connect is not a "reconnect".
  ++reconnects_;
  ObserveTerm();
  return client_.get();
}

void ResilientClient::ObserveTerm() {
  mu_.AssertHeld();
  if (client_ == nullptr) return;
  highest_term_ = std::max(highest_term_, client_->server_term());
}

template <typename Op>
auto ResilientClient::Retry(Op op)
    -> decltype(op(static_cast<Client*>(nullptr))) {
  mu_.AssertHeld();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(options_.deadline_ms);
  bool counted = false;
  backoff_.Reset();
  for (;;) {
    Status failure = Status::OK();
    Result<Client*> live = Ensure();
    if (live.ok()) {
      auto result = op(*live);
      ObserveTerm();
      if (result.ok()) return result;
      if constexpr (std::is_same_v<std::decay_t<decltype(result)>, Status>) {
        failure = result;
      } else {
        failure = result.status();
      }
    } else {
      failure = live.status();
    }
    if (!Client::Retryable(failure)) return failure;
    if (!counted) {
      counted = true;
      ++retried_calls_;
    }
    double delay = backoff_.NextDelayMs();
    if (failure.retry_after_ms() > 0) {
      delay = std::max(delay, static_cast<double>(failure.retry_after_ms()));
    }
    if (std::chrono::steady_clock::now() +
            std::chrono::duration<double, std::milli>(delay) >=
        deadline) {
      return failure;  // budget spent: the last failure, verbatim
    }
    SleepForMs(delay);
  }
}

Result<service::QueryResponse> ResilientClient::Execute(
    const std::string& script, service::QueryOptions opts) {
  MutexLock lock(mu_);
  if (opts.request_id == 0) {
    // Mint an idempotency key so a retried COMMIT after a lost ack is
    // deduplicated server-side instead of re-applied.
    do {
      opts.request_id = request_ids_.Next();
    } while (opts.request_id == 0);
  }
  return Retry([&](Client* c) { return c->Execute(script, opts); });
}

Status ResilientClient::LoadRelation(const std::string& name,
                                     const Relation& relation) {
  MutexLock lock(mu_);
  return Retry([&](Client* c) { return c->LoadRelation(name, relation); });
}

Status ResilientClient::Checkpoint() {
  MutexLock lock(mu_);
  return Retry([&](Client* c) { return c->Checkpoint(); });
}

Result<std::vector<std::string>> ResilientClient::ListRelations() {
  MutexLock lock(mu_);
  return Retry([&](Client* c) { return c->ListRelations(); });
}

Result<Relation> ResilientClient::GetRelation(const std::string& name) {
  MutexLock lock(mu_);
  return Retry([&](Client* c) { return c->GetRelation(name); });
}

Result<uint64_t> ResilientClient::Promote() {
  MutexLock lock(mu_);
  return Retry([&](Client* c) { return c->Promote(); });
}

uint64_t ResilientClient::highest_term() const {
  MutexLock lock(mu_);
  return highest_term_;
}

uint64_t ResilientClient::reconnects() const {
  MutexLock lock(mu_);
  return reconnects_ == 0 ? 0 : reconnects_ - 1;
}

uint64_t ResilientClient::retried_calls() const {
  MutexLock lock(mu_);
  return retried_calls_;
}

bool ResilientClient::server_read_only() const {
  MutexLock lock(mu_);
  return client_ != nullptr && client_->server_read_only();
}

}  // namespace ccdb::net
