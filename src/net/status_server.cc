#include "net/status_server.h"

#include <utility>

#include "obs/exposition.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace ccdb::net {

namespace {

/// One full HTTP/1.0 response. Every reply closes the connection, so
/// Content-Length plus `Connection: close` is the whole story.
std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n"
                    "\r\n";
  out += body;
  return out;
}

std::string ErrorResponse(int code, const char* reason,
                          const std::string& detail) {
  return HttpResponse(code, reason, "text/plain; charset=utf-8",
                      detail + "\n");
}

}  // namespace

StatusServer::StatusServer(Server* server, StatusServerOptions options)
    : server_(server), options_(std::move(options)) {}

Result<std::unique_ptr<StatusServer>> StatusServer::Start(
    Server* server, StatusServerOptions options) {
  if (server == nullptr) {
    return Status::InvalidArgument("StatusServer::Start: null server");
  }
  auto status_server = std::unique_ptr<StatusServer>(
      new StatusServer(server, std::move(options)));
  CCDB_ASSIGN_OR_RETURN(status_server->listener_,
                        Listener::Bind(status_server->options_.port));
  status_server->port_ = status_server->listener_.port();
  status_server->accept_thread_ =
      std::thread([s = status_server.get()] { s->AcceptLoop(); });
  return status_server;
}

StatusServer::~StatusServer() { Shutdown(); }

void StatusServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(mu_);
    // Unblock every connection thread parked in RecvSome/SendAll.
    for (auto& [id, sock] : live_) sock->ShutdownBoth();
  }
  while (true) {
    std::thread victim;
    {
      MutexLock lock(mu_);
      if (threads_.empty()) break;
      victim = std::move(threads_.begin()->second);
      threads_.erase(threads_.begin());
    }
    if (victim.joinable()) victim.join();
  }
}

void StatusServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mu_);
    for (uint64_t id : finished_) {
      auto it = threads_.find(id);
      if (it == threads_.end()) continue;
      done.push_back(std::move(it->second));
      threads_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void StatusServer::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // Close()d: drain
    ReapFinished();
    uint64_t conn_id = 0;
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      conn_id = next_conn_id_++;
      threads_.emplace(
          conn_id,
          std::thread([this, conn_id, sock = std::move(accepted).value()]() //
                      mutable { ServeConnection(conn_id, std::move(sock)); }));
    }
  }
}

void StatusServer::ServeConnection(uint64_t conn_id, Socket sock) {
  {
    MutexLock lock(mu_);
    live_[conn_id] = &sock;
  }

  // Read until the blank line ending the request head, EOF, or the byte
  // cap. Anything after the head (a request body) is ignored.
  std::string head;
  bool complete = false;
  bool oversize = false;
  char buf[1024];
  while (!complete && !oversize) {
    Result<size_t> got = sock.RecvSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;  // error or clean EOF mid-request
    head.append(buf, *got);
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
    } else if (head.size() > kMaxRequestBytes) {
      oversize = true;
    }
  }

  std::string response;
  if (oversize) {
    response = ErrorResponse(400, "Bad Request", "request too large");
  } else if (complete) {
    response = RespondTo(head);
  }
  // An incomplete request (peer vanished mid-head) gets no reply.
  if (!response.empty()) IgnoreError(sock.SendAll(response.data(),
                                                  response.size()));
  sock.ShutdownSend();

  {
    MutexLock lock(mu_);
    live_.erase(conn_id);
    finished_.push_back(conn_id);
  }
}

std::string StatusServer::RespondTo(const std::string& request_head) const {
  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = request_head.find_first_of("\r\n");
  const std::string line = request_head.substr(
      0, line_end == std::string::npos ? request_head.size() : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1) {
    return ErrorResponse(400, "Bad Request", "malformed request line");
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) {
    return ErrorResponse(400, "Bad Request", "malformed request line");
  }
  if (method != "GET") {
    return ErrorResponse(405, "Method Not Allowed", "only GET is supported");
  }
  // Strip a query string; scrapers append them freely.
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (target == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        MetricsBody());
  }
  if (target == "/healthz") {
    return HttpResponse(200, "OK", "application/json", HealthzBody());
  }
  return ErrorResponse(404, "Not Found", "no such path: " + target);
}

std::string StatusServer::MetricsBody() const {
  return obs::RenderPrometheus(server_->MergedSnapshot()) +
         obs::RenderBuildInfo();
}

std::string StatusServer::HealthzBody() const {
  const obs::MetricsRegistry::Snapshot snapshot = server_->MergedSnapshot();
  // Role is dynamic: a promoted replica front-end reports "leader" from
  // the moment Server::Promote flips it.
  const bool is_replica = server_->read_only();
  std::string out = "{\"status\":\"ok\",\"role\":\"";
  out += is_replica ? "replica" : "leader";
  out += "\",\"term\":" + std::to_string(server_->term());
  out += ",\"version\":\"" + obs::JsonEscape(obs::BuildVersion()) + "\"";
  out += ",\"catalog_epoch\":" +
         std::to_string(snapshot.Value(obs::names::kCatalogEpoch));
  out += ",\"wal_lsn\":" + std::to_string(snapshot.Value(obs::names::kWalLsn));
  if (is_replica && options_.replica != nullptr) {
    const Replica::Stats stats = options_.replica->stats();
    out += ",\"replica\":{\"applied_lsn\":" + std::to_string(stats.applied_lsn);
    out += ",\"leader_next_lsn\":" + std::to_string(stats.leader_next_lsn);
    out += ",\"lag_batches\":" + std::to_string(stats.lag_batches);
    out += ",\"lag_bytes\":" + std::to_string(stats.lag_bytes);
    out += ",\"resyncs\":" + std::to_string(stats.resyncs);
    out += ",\"caught_up\":";
    out += stats.caught_up ? "true" : "false";
    out += "}";
  }
  out += "}\n";
  return out;
}

}  // namespace ccdb::net
