#include "num/bigint.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>

namespace ccdb {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;

uint64_t MagnitudeOf(int64_t v) {
  return v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
}
}  // namespace

BigInt::BigInt(int64_t value) {
  if (value >= -kSmallMax && value <= kSmallMax) {
    small_ = value;
    return;
  }
  is_small_ = false;
  negative_ = value < 0;
  uint64_t magnitude = MagnitudeOf(value);
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffULL));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

BigInt BigInt::FromMagnitude(bool negative, unsigned __int128 magnitude) {
  if (magnitude <= static_cast<unsigned __int128>(kSmallMax)) {
    BigInt out;
    int64_t v = static_cast<int64_t>(static_cast<uint64_t>(magnitude));
    out.small_ = negative ? -v : v;
    return out;
  }
  BigInt out;
  out.is_small_ = false;
  out.negative_ = negative;
  while (magnitude != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffULL));
    magnitude >>= 32;
  }
  return out;
}

void BigInt::ToLimbs(bool* negative, std::vector<uint32_t>* limbs) const {
  if (!is_small_) {
    *negative = negative_;
    *limbs = limbs_;
    return;
  }
  *negative = small_ < 0;
  limbs->clear();
  uint64_t magnitude = MagnitudeOf(small_);
  if (magnitude) limbs->push_back(static_cast<uint32_t>(magnitude & 0xffffffffULL));
  if (magnitude >> 32) limbs->push_back(static_cast<uint32_t>(magnitude >> 32));
}

void BigInt::Normalize() {
  if (is_small_) return;
  TrimZeros(&limbs_);
  if (limbs_.empty()) {
    is_small_ = true;
    small_ = 0;
    negative_ = false;
    return;
  }
  if (limbs_.size() <= 2) {
    uint64_t magnitude = limbs_[0];
    if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
    if (magnitude <= static_cast<uint64_t>(kSmallMax)) {
      int64_t v = static_cast<int64_t>(magnitude);
      small_ = negative_ ? -v : v;
      is_small_ = true;
      negative_ = false;
      limbs_.clear();
    }
  }
}

Result<BigInt> BigInt::FromString(const std::string& text) {
  size_t i = 0;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i >= text.size()) {
    return Status::ParseError("empty integer literal: '" + text + "'");
  }
  // Fast path: fits comfortably in int64.
  if (text.size() - i <= 18) {
    int64_t value = 0;
    for (; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        return Status::ParseError("bad digit in integer literal: '" + text +
                                  "'");
      }
      value = value * 10 + (text[i] - '0');
    }
    return BigInt(negative ? -value : value);
  }
  BigInt result;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return Status::ParseError("bad digit in integer literal: '" + text + "'");
    }
    result = result * ten + BigInt(text[i] - '0');
  }
  if (negative) result = -result;
  return result;
}

std::string BigInt::ToString() const {
  if (is_small_) return std::to_string(small_);
  // Repeated division by 10^9 (one limb's worth of decimal digits).
  std::vector<uint32_t> digits;  // base-10^9 digits, little-endian
  std::vector<uint32_t> work = limbs_;
  while (!work.empty()) {
    uint64_t remainder = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      remainder = cur % 1000000000ULL;
    }
    digits.push_back(static_cast<uint32_t>(remainder));
    TrimZeros(&work);
  }
  std::string out;
  if (negative_) out += '-';
  out += std::to_string(digits.back());
  for (size_t i = digits.size() - 1; i-- > 0;) {
    std::string chunk = std::to_string(digits[i]);
    out += std::string(9 - chunk.size(), '0');
    out += chunk;
  }
  return out;
}

double BigInt::ToDouble() const {
  if (is_small_) return static_cast<double>(small_);
  double value = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -value : value;
}

Result<int64_t> BigInt::ToInt64() const {
  if (is_small_) return small_;
  if (limbs_.size() > 2) return Status::OutOfRange("BigInt exceeds int64 range");
  uint64_t magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return Status::OutOfRange("BigInt exceeds int64 range");
    }
    return static_cast<int64_t>(~magnitude + 1);
  }
  if (magnitude > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return Status::OutOfRange("BigInt exceeds int64 range");
  }
  return static_cast<int64_t>(magnitude);
}

BigInt BigInt::operator-() const {
  if (is_small_) {
    BigInt out;
    out.small_ = -small_;  // safe: |small_| <= 2^62
    return out;
  }
  BigInt out = *this;
  out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  if (is_small_) {
    BigInt out;
    out.small_ = small_ < 0 ? -small_ : small_;
    return out;
  }
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    if (small_ != other.small_) return small_ < other.small_ ? -1 : 1;
    return 0;
  }
  // Canonical form: a big value always exceeds any small one in magnitude.
  if (is_small_) return other.negative_ ? 1 : -1;
  if (other.is_small_) return negative_ ? -1 : 1;
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

void BigInt::TrimZeros(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  assert(CompareMagnitude(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimZeros(&out);
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             std::vector<uint32_t>* quotient,
                             std::vector<uint32_t>* remainder) {
  assert(!b.empty() && "division by zero");
  quotient->clear();
  remainder->clear();
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return;
  }
  if (b.size() == 1) {
    // Short division by a single limb.
    const uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      (*quotient)[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    TrimZeros(quotient);
    if (rem) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }

  // Knuth TAOCP vol.2 Algorithm D.
  const size_t n = b.size();
  const size_t m = a.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    uint32_t top = b.back();
    while ((top & 0x80000000U) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl = [shift](const std::vector<uint32_t>& v) {
    std::vector<uint32_t> out(v.size() + 1, 0);
    if (shift == 0) {
      std::copy(v.begin(), v.end(), out.begin());
      return out;
    }
    uint32_t carry = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] = (v[i] << shift) | carry;
      carry = static_cast<uint32_t>(v[i] >> (32 - shift));
    }
    out[v.size()] = carry;
    return out;
  };
  std::vector<uint32_t> u = shl(a);  // size a.size()+1
  std::vector<uint32_t> v = shl(b);  // top limb may spill
  TrimZeros(&v);
  assert(v.size() == n);

  quotient->assign(m + 1, 0);
  const uint64_t vn1 = v[n - 1];
  const uint64_t vn2 = v[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate q̂.
    uint64_t numerator = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / vn1;
    uint64_t rhat = numerator % vn1;
    while (qhat >= kBase || qhat * vn2 > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vn1;
      if (rhat >= kBase) break;
    }
    // D4: multiply-and-subtract u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t top = static_cast<int64_t>(u[j + n]) -
                  static_cast<int64_t>(carry) - borrow;
    if (top < 0) {
      // D6: estimate was one too large; add back.
      top += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffULL);
        carry2 = sum >> 32;
      }
      top += static_cast<int64_t>(carry2);
      top &= static_cast<int64_t>(kBase - 1);
    }
    u[j + n] = static_cast<uint32_t>(top);
    (*quotient)[j] = static_cast<uint32_t>(qhat);
  }
  TrimZeros(quotient);

  // D8: denormalize the remainder (low n limbs of u, shifted back).
  remainder->assign(n, 0);
  if (shift == 0) {
    std::copy(u.begin(), u.begin() + static_cast<ptrdiff_t>(n),
              remainder->begin());
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint32_t high = (i + 1 < n) ? u[i + 1] : 0;
      (*remainder)[i] = (u[i] >> shift) |
                        static_cast<uint32_t>(static_cast<uint64_t>(high)
                                              << (32 - shift));
    }
  }
  TrimZeros(remainder);
}

BigInt BigInt::AddBig(bool a_neg, const std::vector<uint32_t>& a, bool b_neg,
                      const std::vector<uint32_t>& b) {
  BigInt out;
  out.is_small_ = false;
  if (a_neg == b_neg) {
    out.limbs_ = AddMagnitude(a, b);
    out.negative_ = a_neg;
  } else {
    int cmp = CompareMagnitude(a, b);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitude(a, b);
      out.negative_ = a_neg;
    } else {
      out.limbs_ = SubMagnitude(b, a);
      out.negative_ = b_neg;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    // |a| + |b| can reach 2^63 exactly, so sum in 128 bits.
    __int128 sum = static_cast<__int128>(small_) + other.small_;
    bool negative = sum < 0;
    unsigned __int128 magnitude =
        negative ? static_cast<unsigned __int128>(-sum)
                 : static_cast<unsigned __int128>(sum);
    return FromMagnitude(negative, magnitude);
  }
  bool a_neg, b_neg;
  std::vector<uint32_t> a, b;
  ToLimbs(&a_neg, &a);
  other.ToLimbs(&b_neg, &b);
  return AddBig(a_neg, a, b_neg, b);
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    __int128 product = static_cast<__int128>(small_) * other.small_;
    bool negative = product < 0;
    unsigned __int128 magnitude =
        negative ? static_cast<unsigned __int128>(-product)
                 : static_cast<unsigned __int128>(product);
    return FromMagnitude(negative, magnitude);
  }
  bool a_neg, b_neg;
  std::vector<uint32_t> a, b;
  ToLimbs(&a_neg, &a);
  other.ToLimbs(&b_neg, &b);
  BigInt out;
  out.is_small_ = false;
  out.limbs_ = MulMagnitude(a, b);
  out.negative_ = a_neg != b_neg;
  out.Normalize();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  assert(!b.IsZero() && "division by zero");
  if (a.is_small_ && b.is_small_) {
    *quotient = BigInt(a.small_ / b.small_);
    *remainder = BigInt(a.small_ % b.small_);
    return;
  }
  bool a_neg, b_neg;
  std::vector<uint32_t> av, bv;
  a.ToLimbs(&a_neg, &av);
  b.ToLimbs(&b_neg, &bv);
  std::vector<uint32_t> q, r;
  DivModMagnitude(av, bv, &q, &r);
  quotient->is_small_ = false;
  quotient->limbs_ = std::move(q);
  quotient->negative_ = a_neg != b_neg;
  quotient->Normalize();
  remainder->is_small_ = false;
  remainder->limbs_ = std::move(r);
  remainder->negative_ = a_neg;  // remainder takes dividend's sign
  remainder->Normalize();
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return r;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  if (a.is_small_ && b.is_small_) {
    uint64_t x = MagnitudeOf(a.small_);
    uint64_t y = MagnitudeOf(b.small_);
    while (y != 0) {
      uint64_t t = x % y;
      x = y;
      y = t;
    }
    return BigInt(static_cast<int64_t>(x));
  }
  a = a.Abs();
  b = b.Abs();
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, uint32_t exp) {
  BigInt result(1);
  BigInt acc = base;
  while (exp > 0) {
    if (exp & 1) result *= acc;
    exp >>= 1;
    if (exp) acc *= acc;
  }
  return result;
}

size_t BigInt::BitLength() const {
  if (is_small_) {
    uint64_t magnitude = MagnitudeOf(small_);
    size_t bits = 0;
    while (magnitude) {
      ++bits;
      magnitude >>= 1;
    }
    return bits;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  if (is_small_) {
    if (bits >= 63) return BigInt();
    int64_t magnitude = small_ < 0 ? -small_ : small_;
    magnitude >>= bits;
    return BigInt(small_ < 0 ? -magnitude : magnitude);
  }
  const size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.is_small_ = false;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.begin() + static_cast<ptrdiff_t>(limb_shift),
                    limbs_.end());
  if (bit_shift > 0) {
    uint32_t carry = 0;
    for (size_t i = out.limbs_.size(); i-- > 0;) {
      uint32_t cur = out.limbs_[i];
      out.limbs_[i] = (cur >> bit_shift) | carry;
      carry = cur << (32 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

size_t BigInt::Hash() const {
  // Values in canonical form: hash via the limb decomposition so small
  // and big paths can never disagree (equal values share representation
  // anyway, but keep the hash purely value-based).
  if (is_small_) {
    uint64_t magnitude = MagnitudeOf(small_);
    size_t h = small_ < 0 ? 0x9e3779b97f4a7c15ULL : 0;
    while (magnitude) {
      h ^= static_cast<uint32_t>(magnitude & 0xffffffffULL) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      magnitude >>= 32;
    }
    return h;
  }
  size_t h = negative_ ? 0x9e3779b97f4a7c15ULL : 0;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace ccdb
