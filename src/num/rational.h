#ifndef CCDB_NUM_RATIONAL_H_
#define CCDB_NUM_RATIONAL_H_

/// \file rational.h
/// Exact rational numbers.
///
/// CQA/CDB is a *rational linear* constraint database (§1.1 of the paper):
/// constants and coefficients are rationals, and all algebraic operators are
/// evaluated exactly so the closure principle holds with no approximation.
/// `Rational` is a normalized BigInt fraction (gcd-reduced, positive
/// denominator).

#include <string>

#include "num/bigint.h"
#include "util/status.h"

namespace ccdb {

/// Exact rational number `numerator / denominator`.
///
/// Invariants: denominator > 0; gcd(|numerator|, denominator) == 1;
/// zero is 0/1. All arithmetic is total except division by zero.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// From an integer.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT(runtime/explicit)

  /// From a BigInt.
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// From numerator/denominator; normalizes. Requires non-zero denominator.
  Rational(BigInt numerator, BigInt denominator);

  /// Convenience for small fractions, e.g. Rational(1, 2).
  Rational(int64_t numerator, int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  /// Parses "-3", "3/4", "2.5", "-0.125". Rejects empty/garbage input.
  static Result<Rational> FromString(const std::string& text);

  /// Exact decimal-or-fraction rendering: integers as "n", otherwise "p/q".
  std::string ToString() const;

  /// Closest double.
  double ToDouble() const;

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsInteger() const { return den_.IsOne(); }

  /// -1, 0, or +1.
  int Sign() const { return num_.Sign(); }

  Rational operator-() const;
  Rational Abs() const;
  /// Multiplicative inverse; requires non-zero.
  Rational Inverse() const;

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Requires non-zero divisor.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

  /// Three-way comparison via cross-multiplication (exact).
  int Compare(const Rational& other) const;

  /// Componentwise minimum / maximum.
  static const Rational& Min(const Rational& a, const Rational& b) {
    return a <= b ? a : b;
  }
  static const Rational& Max(const Rational& a, const Rational& b) {
    return a >= b ? a : b;
  }

  /// Largest integer <= value.
  BigInt Floor() const;
  /// Smallest integer >= value.
  BigInt Ceil() const;

  /// Stable hash for container use.
  size_t Hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // always positive
};

/// Stream rendering via ToString.
std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace ccdb

#endif  // CCDB_NUM_RATIONAL_H_
