#ifndef CCDB_NUM_BIGINT_H_
#define CCDB_NUM_BIGINT_H_

/// \file bigint.h
/// Arbitrary-precision signed integers.
///
/// CCDB evaluates constraint queries *exactly*: the closure principle (§2.5
/// of the paper) requires query outputs to be representable in the same
/// constraint class as the inputs, and Fourier–Motzkin elimination multiplies
/// coefficient pairs at every step, growing them beyond any fixed width.
///
/// Representation: values with |v| <= 2^62 live inline in an int64 (the
/// *small* form — no heap allocation, covering virtually all coefficients
/// in real workloads); larger values use sign-magnitude 32-bit limbs with
/// schoolbook multiplication and Knuth Algorithm D division. The form is
/// canonical — any value that fits is small — so representation equality
/// is value equality.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ccdb {

/// Arbitrary-precision signed integer with an inline small-value form.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From a machine integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit): numeric literal ergonomics

  /// Parses an optionally signed decimal string, e.g. "-12345678901234567890".
  static Result<BigInt> FromString(const std::string& text);

  /// Decimal rendering, e.g. "-42".
  std::string ToString() const;

  /// Closest double (may overflow to +/-inf for huge values).
  double ToDouble() const;

  /// Value as int64 if it fits.
  Result<int64_t> ToInt64() const;

  bool IsZero() const { return is_small_ && small_ == 0; }
  bool IsNegative() const { return is_small_ ? small_ < 0 : negative_; }
  bool IsOne() const { return is_small_ && small_ == 1; }

  /// -1, 0, or +1.
  int Sign() const {
    if (is_small_) return small_ == 0 ? 0 : (small_ < 0 ? -1 : 1);
    return negative_ ? -1 : 1;  // big form is never zero
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the dividend's sign). Requires non-zero divisor.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  /// Computes quotient and remainder in one pass (truncated semantics).
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  bool operator==(const BigInt& other) const {
    // Canonical form: equal values share a representation.
    if (is_small_ != other.is_small_) return false;
    if (is_small_) return small_ == other.small_;
    return negative_ == other.negative_ && limbs_ == other.limbs_;
  }
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: negative/zero/positive like strcmp.
  int Compare(const BigInt& other) const;

  /// Greatest common divisor; result is non-negative. Gcd(0,0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// `base` raised to `exp` (exp >= 0).
  static BigInt Pow(const BigInt& base, uint32_t exp);

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  /// Arithmetic right shift of the magnitude (truncates toward zero).
  BigInt ShiftRight(size_t bits) const;

  /// Stable hash for container use.
  size_t Hash() const;

 private:
  /// Largest magnitude kept in the small form. 2^62 leaves headroom so
  /// negation/abs and sums of two smalls never overflow int64.
  static constexpr int64_t kSmallMax = int64_t{1} << 62;

  /// Builds the big (limb) form from a 64-bit-plus magnitude.
  static BigInt FromMagnitude(bool negative, unsigned __int128 magnitude);

  /// Returns this value in limb form regardless of representation.
  void ToLimbs(bool* negative, std::vector<uint32_t>* limbs) const;

  /// Compares magnitudes only.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Knuth Algorithm D on magnitudes; requires non-empty divisor.
  static void DivModMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b,
                              std::vector<uint32_t>* quotient,
                              std::vector<uint32_t>* remainder);
  static void TrimZeros(std::vector<uint32_t>* limbs);

  /// Big-path arithmetic on two limb forms.
  static BigInt AddBig(bool a_neg, const std::vector<uint32_t>& a,
                       bool b_neg, const std::vector<uint32_t>& b);

  /// Restores the canonical form: trims zero limbs and demotes to the
  /// small form when the value fits.
  void Normalize();

  bool is_small_ = true;
  int64_t small_ = 0;                // valid when is_small_
  bool negative_ = false;            // big form only
  std::vector<uint32_t> limbs_;      // big form only; little-endian
};

/// Stream rendering via ToString.
std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace ccdb

#endif  // CCDB_NUM_BIGINT_H_
