#include "num/rational.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <utility>

#include "util/string_util.h"

namespace ccdb {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  assert(!den_.IsZero() && "zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.IsOne()) {
    num_ /= g;
    den_ /= g;
  }
}

Result<Rational> Rational::FromString(const std::string& text) {
  std::string s = Trim(text);
  if (s.empty()) return Status::ParseError("empty rational literal");

  size_t slash = s.find('/');
  if (slash != std::string::npos) {
    CCDB_ASSIGN_OR_RETURN(BigInt num,
                          BigInt::FromString(Trim(s.substr(0, slash))));
    CCDB_ASSIGN_OR_RETURN(BigInt den,
                          BigInt::FromString(Trim(s.substr(slash + 1))));
    if (den.IsZero()) {
      return Status::ParseError("zero denominator in '" + text + "'");
    }
    return Rational(std::move(num), std::move(den));
  }

  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    std::string head = s.substr(0, dot);
    std::string frac = s.substr(dot + 1);
    if (frac.empty()) {
      return Status::ParseError("trailing decimal point in '" + text + "'");
    }
    bool negative = !head.empty() && head[0] == '-';
    if (head == "-" || head == "+" || head.empty()) head += '0';
    CCDB_ASSIGN_OR_RETURN(BigInt whole, BigInt::FromString(head));
    CCDB_ASSIGN_OR_RETURN(BigInt fraction, BigInt::FromString(frac));
    if (fraction.IsNegative()) {
      return Status::ParseError("bad decimal literal '" + text + "'");
    }
    BigInt scale = BigInt::Pow(BigInt(10), static_cast<uint32_t>(frac.size()));
    BigInt numerator = whole.Abs() * scale + fraction;
    if (negative) numerator = -numerator;
    return Rational(std::move(numerator), std::move(scale));
  }

  CCDB_ASSIGN_OR_RETURN(BigInt value, BigInt::FromString(s));
  return Rational(std::move(value));
}

std::string Rational::ToString() const {
  if (IsInteger()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const {
  // Huge operands overflow double to inf/inf = NaN; shift both down by a
  // common power of two first (exact for the ratio up to rounding).
  const size_t max_bits = std::max(num_.BitLength(), den_.BitLength());
  if (max_bits < 1000) {
    return num_.ToDouble() / den_.ToDouble();
  }
  // Shift both sides so the larger fits comfortably in a double's range;
  // a side shifted to zero honestly underflows (or the ratio overflows to
  // inf via IEEE x/0).
  const size_t shift = max_bits - 900;
  return num_.ShiftRight(shift).ToDouble() /
         den_.ShiftRight(shift).ToDouble();
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.num_ = out.num_.Abs();
  return out;
}

Rational Rational::Inverse() const {
  assert(!IsZero() && "inverse of zero");
  Rational out;
  out.num_ = den_;
  out.den_ = num_;
  if (out.den_.IsNegative()) {
    out.num_ = -out.num_;
    out.den_ = -out.den_;
  }
  return out;  // already reduced: gcd preserved by swapping
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  assert(!other.IsZero() && "division by zero");
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  // Denominators are positive, so sign(a/b - c/d) == sign(ad - cb).
  return (num_ * other.den_).Compare(other.num_ * den_);
}

BigInt Rational::Floor() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (r.IsZero() || !num_.IsNegative()) return q;
  return q - BigInt(1);
}

BigInt Rational::Ceil() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (r.IsZero() || num_.IsNegative()) return q;
  return q + BigInt(1);
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace ccdb
