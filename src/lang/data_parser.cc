#include "lang/data_parser.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "lang/expr_parser.h"
#include "util/string_util.h"

namespace ccdb::lang {

namespace {

Status AtLine(size_t line, const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(),
                "line " + std::to_string(line) + ": " + status.message());
}

/// Parses "name: domain kind; name: domain kind; ...".
Result<Schema> ParseSchemaDeclaration(const std::string& text) {
  std::vector<Attribute> attrs;
  for (const std::string& piece : SplitAndTrim(text, ';')) {
    if (piece.empty()) continue;
    size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("attribute without ':' in schema: '" + piece +
                                "'");
    }
    Attribute attr;
    attr.name = Trim(piece.substr(0, colon));
    std::vector<std::string> words;
    for (const std::string& w :
         SplitAndTrim(Trim(piece.substr(colon + 1)), ' ')) {
      // Allow both "rational constraint" and "rational, constraint".
      std::string cleaned = Trim(w);
      if (!cleaned.empty() && cleaned.back() == ',') cleaned.pop_back();
      if (!cleaned.empty()) words.push_back(ToLower(cleaned));
    }
    // Also split on commas inside single words ("rational,constraint").
    std::vector<std::string> flags;
    for (const std::string& w : words) {
      for (const std::string& part : SplitAndTrim(w, ',')) {
        if (!part.empty()) flags.push_back(part);
      }
    }
    bool domain_set = false, kind_set = false;
    for (const std::string& flag : flags) {
      if (flag == "string") {
        attr.domain = AttributeDomain::kString;
        domain_set = true;
      } else if (flag == "rational") {
        attr.domain = AttributeDomain::kRational;
        domain_set = true;
      } else if (flag == "relational") {
        attr.kind = AttributeKind::kRelational;
        kind_set = true;
      } else if (flag == "constraint") {
        attr.kind = AttributeKind::kConstraint;
        kind_set = true;
      } else {
        return Status::ParseError("unknown schema flag '" + flag + "'");
      }
    }
    if (!domain_set || !kind_set) {
      return Status::ParseError("attribute '" + attr.name +
                                "' needs a domain (string|rational) and a "
                                "kind (relational|constraint)");
    }
    attrs.push_back(std::move(attr));
  }
  return Schema::Make(std::move(attrs));
}

}  // namespace

Status LoadDatabaseText(const std::string& text, Database* db) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  std::optional<std::string> relation_name;
  std::optional<Relation> relation;

  auto flush = [&]() -> Status {
    if (relation_name && relation) {
      CCDB_RETURN_IF_ERROR(db->Create(*relation_name, std::move(*relation)));
    } else if (relation_name) {
      return Status::ParseError("relation '" + *relation_name +
                                "' has no schema");
    }
    relation_name.reset();
    relation.reset();
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (StartsWith(ToLower(trimmed), "relation")) {
      CCDB_RETURN_IF_ERROR(AtLine(line_no, flush()));
      std::string name = Trim(trimmed.substr(8));
      if (name.empty()) {
        return AtLine(line_no, Status::ParseError("relation without a name"));
      }
      relation_name = name;
      continue;
    }
    if (StartsWith(ToLower(trimmed), "schema")) {
      if (!relation_name) {
        return AtLine(line_no,
                      Status::ParseError("schema before any relation"));
      }
      if (relation) {
        return AtLine(line_no, Status::ParseError(
                                   "duplicate schema for relation '" +
                                   *relation_name + "'"));
      }
      auto schema = ParseSchemaDeclaration(Trim(trimmed.substr(6)));
      if (!schema.ok()) return AtLine(line_no, schema.status());
      relation = Relation(std::move(schema).value());
      continue;
    }
    if (StartsWith(ToLower(trimmed), "tuple")) {
      if (!relation) {
        return AtLine(line_no,
                      Status::ParseError("tuple before relation schema"));
      }
      auto comparisons = ParseComparisonList(Trim(trimmed.substr(5)));
      if (!comparisons.ok()) return AtLine(line_no, comparisons.status());
      auto tuple = BindTuple(relation->schema(), *comparisons);
      if (!tuple.ok()) return AtLine(line_no, tuple.status());
      Status inserted = relation->Insert(std::move(tuple).value());
      if (!inserted.ok()) return AtLine(line_no, inserted);
      continue;
    }
    return AtLine(line_no, Status::ParseError("unrecognized directive: '" +
                                              trimmed + "'"));
  }
  return flush();
}

Status LoadDatabaseFile(const std::string& path, Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadDatabaseText(buffer.str(), db);
}

std::string FormatTupleLine(const Tuple& tuple) {
  std::string out = "tuple ";
  bool first = true;
  for (const auto& [name, value] : tuple.values()) {
    if (!first) out += ", ";
    out += name + " = " + value.ToString();  // strings render quoted
    first = false;
  }
  for (const Constraint& c : tuple.constraints().constraints()) {
    if (!first) out += ", ";
    out += c.ToPrettyString();
    first = false;
  }
  return out;
}

std::string FormatDatabaseText(const Database& db) {
  std::string out;
  for (const std::string& name : db.Names()) {
    const Relation* rel = db.Get(name).value();
    out += "relation " + name + "\n";
    out += FormatSchemaDeclaration(rel->schema()) + "\n";
    for (const Tuple& t : rel->tuples()) {
      out += FormatTupleLine(t) + "\n";
    }
    out += "\n";
  }
  return out;
}

Status SaveDatabaseFile(const std::string& path, const Database& db) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out << FormatDatabaseText(db);
  if (!out.good()) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

std::string FormatSchemaDeclaration(const Schema& schema) {
  std::string out = "schema ";
  bool first = true;
  for (const Attribute& attr : schema.attributes()) {
    if (!first) out += "; ";
    out += attr.name;
    out += ": ";
    out += AttributeDomainName(attr.domain);
    out += " ";
    out += AttributeKindName(attr.kind);
    first = false;
  }
  return out;
}

}  // namespace ccdb::lang
