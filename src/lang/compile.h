#ifndef CCDB_LANG_COMPILE_H_
#define CCDB_LANG_COMPILE_H_

/// \file compile.h
/// Compilation of step scripts into logical CQA plans.
///
/// The script executor (query.h) evaluates each statement eagerly, which
/// is simple but opaque: there is no plan to optimize or to trace. This
/// file bridges the two worlds for the relational-algebra subset of the
/// language: `CompileScript` turns a script into a single `PlanNode` tree
/// by inlining every step reference into its defining subplan, so the
/// result can be fed to `cqa::Optimize` and `cqa::ExecuteTraced` — the
/// EXPLAIN ANALYZE path.
///
/// Compilable statements: select, project, join, product, intersect,
/// union, minus/difference, rename (product and intersect compile to the
/// natural join that implements them). `normalize`, `buffer-join`, and
/// `k-nearest` have no algebra node; scripts using them fail with
/// kUnsupported, and callers fall back to statement-level tracing.

#include <memory>
#include <string>

#include "core/plan.h"
#include "util/status.h"

namespace ccdb::lang {

/// A script compiled to a single logical plan.
struct CompiledScript {
  std::unique_ptr<cqa::PlanNode> plan;
  std::string final_step;  ///< name of the last step (= plan's result)
};

/// Compiles a script into one plan tree against `db`'s catalog (needed to
/// infer child schemas when binding selection predicates). Step references
/// are inlined by cloning the referenced step's subplan; identifiers never
/// defined by the script become `Scan` leaves. Fails with kUnsupported on
/// statements outside the algebra subset, and with the usual parse errors
/// (annotated with line numbers) on malformed input.
Result<CompiledScript> CompileScript(const std::string& script,
                                     const Database& db);

}  // namespace ccdb::lang

#endif  // CCDB_LANG_COMPILE_H_
