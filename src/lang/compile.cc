#include "lang/compile.h"

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "lang/expr_parser.h"
#include "lang/lexer.h"
#include "util/string_util.h"

namespace ccdb::lang {

namespace {

using cqa::PlanNode;

/// Step name -> the subplan that computes it.
using StepMap = std::map<std::string, std::unique_ptr<PlanNode>>;

/// A reference to `name`: an earlier step's subplan (inlined by cloning)
/// or a catalog scan.
std::unique_ptr<PlanNode> Lookup(const StepMap& steps,
                                 const std::string& name) {
  auto it = steps.find(name);
  if (it != steps.end()) return it->second->Clone();
  return PlanNode::Scan(name);
}

/// Parses comparisons until (and consuming) the keyword `stop`.
Result<std::vector<ParsedComparison>> ParseComparisonsUntil(
    TokenStream* ts, const std::string& stop) {
  std::vector<ParsedComparison> out;
  while (true) {
    CCDB_ASSIGN_OR_RETURN(ParsedComparison cmp, ParseComparison(ts));
    out.push_back(std::move(cmp));
    if (ts->TrySymbol(",")) continue;
    CCDB_RETURN_IF_ERROR(ts->ExpectKeyword(stop));
    break;
  }
  return out;
}

/// Recognizes (without consuming) hyphenated operator keywords
/// ("buffer-join", "k-nearest").
bool IsHyphenKeyword(const TokenStream& ts, const std::string& first,
                     const std::string& second) {
  return ts.Peek().IsKeyword(first) && ts.Peek(1).IsSymbol("-") &&
         ts.Peek(2).IsKeyword(second);
}

Result<std::unique_ptr<PlanNode>> CompileSelect(TokenStream* ts,
                                                const StepMap& steps,
                                                const Database& db) {
  CCDB_ASSIGN_OR_RETURN(std::vector<ParsedComparison> comparisons,
                        ParseComparisonsUntil(ts, "from"));
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  std::unique_ptr<PlanNode> child = Lookup(steps, rel_name);
  CCDB_ASSIGN_OR_RETURN(Schema schema, cqa::InferSchema(*child, db));
  CCDB_ASSIGN_OR_RETURN(Predicate pred, BindPredicate(schema, comparisons));
  return PlanNode::Select(std::move(child), std::move(pred));
}

Result<std::unique_ptr<PlanNode>> CompileProject(TokenStream* ts,
                                                 const StepMap& steps) {
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("on"));
  std::vector<std::string> attrs;
  while (true) {
    CCDB_ASSIGN_OR_RETURN(std::string attr,
                          ts->ExpectIdentifier("attribute name"));
    attrs.push_back(std::move(attr));
    if (!ts->TrySymbol(",")) break;
  }
  return PlanNode::Project(Lookup(steps, rel_name), std::move(attrs));
}

struct BinaryPlans {
  std::unique_ptr<PlanNode> lhs;
  std::unique_ptr<PlanNode> rhs;
};

/// `<lhs> and <rhs>` for the binary operators.
Result<BinaryPlans> ParseBinaryPlans(TokenStream* ts, const StepMap& steps) {
  CCDB_ASSIGN_OR_RETURN(std::string lhs_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("and"));
  CCDB_ASSIGN_OR_RETURN(std::string rhs_name,
                        ts->ExpectIdentifier("relation name"));
  return BinaryPlans{Lookup(steps, lhs_name), Lookup(steps, rhs_name)};
}

Result<std::unique_ptr<PlanNode>> CompileRename(TokenStream* ts,
                                                const StepMap& steps) {
  CCDB_ASSIGN_OR_RETURN(std::string from,
                        ts->ExpectIdentifier("attribute name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("to"));
  CCDB_ASSIGN_OR_RETURN(std::string to,
                        ts->ExpectIdentifier("attribute name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("in"));
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  return PlanNode::RenameAttr(Lookup(steps, rel_name), std::move(from),
                              std::move(to));
}

/// Compiles one statement; returns {step name, subplan}.
Result<std::pair<std::string, std::unique_ptr<PlanNode>>> CompileStatement(
    const std::string& statement, const StepMap& steps, const Database& db) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  TokenStream ts(std::move(tokens));
  CCDB_ASSIGN_OR_RETURN(std::string step_name,
                        ts.ExpectIdentifier("step name"));
  CCDB_RETURN_IF_ERROR(ts.ExpectSymbol("="));

  Result<std::unique_ptr<PlanNode>> plan = Status::Internal("unset");
  if (ts.TryKeyword("select")) {
    plan = CompileSelect(&ts, steps, db);
  } else if (ts.TryKeyword("project")) {
    plan = CompileProject(&ts, steps);
  } else if (ts.TryKeyword("join") || ts.TryKeyword("product") ||
             ts.TryKeyword("intersect")) {
    // Product and intersect are implemented by natural join (disjoint and
    // identical schemas respectively), so all three compile to kJoin.
    CCDB_ASSIGN_OR_RETURN(BinaryPlans operands, ParseBinaryPlans(&ts, steps));
    plan = PlanNode::Join(std::move(operands.lhs), std::move(operands.rhs));
  } else if (ts.TryKeyword("union")) {
    CCDB_ASSIGN_OR_RETURN(BinaryPlans operands, ParseBinaryPlans(&ts, steps));
    plan = PlanNode::UnionOf(std::move(operands.lhs),
                             std::move(operands.rhs));
  } else if (ts.TryKeyword("minus") || ts.TryKeyword("difference")) {
    CCDB_ASSIGN_OR_RETURN(BinaryPlans operands, ParseBinaryPlans(&ts, steps));
    plan = PlanNode::DifferenceOf(std::move(operands.lhs),
                                  std::move(operands.rhs));
  } else if (ts.TryKeyword("rename")) {
    plan = CompileRename(&ts, steps);
  } else if (ts.Peek().IsKeyword("normalize")) {
    return Status::Unsupported(
        "operator 'normalize' has no algebra form (not compilable)");
  } else if (IsHyphenKeyword(ts, "buffer", "join")) {
    return Status::Unsupported(
        "operator 'buffer-join' has no algebra form (not compilable)");
  } else if (IsHyphenKeyword(ts, "k", "nearest")) {
    return Status::Unsupported(
        "operator 'k-nearest' has no algebra form (not compilable)");
  } else {
    return Status::ParseError("unknown operator '" + ts.Peek().text + "'");
  }
  if (!plan.ok()) return plan.status();
  if (!ts.AtEnd()) {
    return Status::ParseError("trailing input: '" + ts.Peek().text + "'");
  }
  return std::make_pair(std::move(step_name), std::move(plan).value());
}

}  // namespace

Result<CompiledScript> CompileScript(const std::string& script,
                                     const Database& db) {
  std::istringstream in(script);
  std::string line;
  size_t line_no = 0;
  StepMap steps;
  std::string last_step;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto compiled = CompileStatement(trimmed, steps, db);
    if (!compiled.ok()) {
      return Status(compiled.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        compiled.status().message());
    }
    last_step = compiled->first;
    steps[last_step] = std::move(compiled->second);
  }
  if (last_step.empty()) {
    return Status::InvalidArgument("script contains no statements");
  }
  CompiledScript out;
  out.plan = std::move(steps[last_step]);
  out.final_step = last_step;
  return out;
}

}  // namespace ccdb::lang
