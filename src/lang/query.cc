#include "lang/query.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

#include "core/operators.h"
#include "core/spatial.h"
#include "lang/expr_parser.h"
#include "obs/governance.h"
#include "util/string_util.h"

namespace ccdb::lang {

namespace {

Result<const Relation*> GetRelation(Database* db, const std::string& name) {
  return db->Get(name);
}

/// Parses comparisons until (and consuming) the keyword `stop`.
Result<std::vector<ParsedComparison>> ParseComparisonsUntil(
    TokenStream* ts, const std::string& stop) {
  std::vector<ParsedComparison> out;
  while (true) {
    CCDB_ASSIGN_OR_RETURN(ParsedComparison cmp, ParseComparison(ts));
    out.push_back(std::move(cmp));
    if (ts->TrySymbol(",")) continue;
    CCDB_RETURN_IF_ERROR(ts->ExpectKeyword(stop));
    break;
  }
  return out;
}

/// Recognizes hyphenated operator keywords at the cursor:
/// "buffer-join" and "k-nearest".
bool TryHyphenKeyword(TokenStream* ts, const std::string& first,
                      const std::string& second) {
  if (ts->Peek().IsKeyword(first) && ts->Peek(1).IsSymbol("-") &&
      ts->Peek(2).IsKeyword(second)) {
    ts->Next();
    ts->Next();
    ts->Next();
    return true;
  }
  return false;
}

Result<Relation> EvalSelect(TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::vector<ParsedComparison> comparisons,
                        ParseComparisonsUntil(ts, "from"));
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_ASSIGN_OR_RETURN(const Relation* rel, GetRelation(db, rel_name));
  CCDB_ASSIGN_OR_RETURN(Predicate pred,
                        BindPredicate(rel->schema(), comparisons));
  return cqa::Select(*rel, pred);
}

Result<Relation> EvalProject(TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("on"));
  std::vector<std::string> attrs;
  while (true) {
    CCDB_ASSIGN_OR_RETURN(std::string attr,
                          ts->ExpectIdentifier("attribute name"));
    attrs.push_back(std::move(attr));
    if (!ts->TrySymbol(",")) break;
  }
  CCDB_ASSIGN_OR_RETURN(const Relation* rel, GetRelation(db, rel_name));
  return cqa::Project(*rel, attrs);
}

/// `<lhs> and <rhs>` for the binary operators.
Result<std::pair<const Relation*, const Relation*>> ParseBinaryOperands(
    TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::string lhs_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("and"));
  CCDB_ASSIGN_OR_RETURN(std::string rhs_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_ASSIGN_OR_RETURN(const Relation* lhs, GetRelation(db, lhs_name));
  CCDB_ASSIGN_OR_RETURN(const Relation* rhs, GetRelation(db, rhs_name));
  return std::make_pair(lhs, rhs);
}

Result<Relation> EvalRename(TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::string from,
                        ts->ExpectIdentifier("attribute name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("to"));
  CCDB_ASSIGN_OR_RETURN(std::string to,
                        ts->ExpectIdentifier("attribute name"));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("in"));
  CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                        ts->ExpectIdentifier("relation name"));
  CCDB_ASSIGN_OR_RETURN(const Relation* rel, GetRelation(db, rel_name));
  return cqa::Rename(*rel, from, to);
}

Result<Relation> EvalBufferJoin(TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(ts, db));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("within"));
  CCDB_ASSIGN_OR_RETURN(Rational distance, ParseCoefficient(ts));
  std::string id_attr = "fid";
  if (ts->TryKeyword("using")) {
    CCDB_ASSIGN_OR_RETURN(id_attr, ts->ExpectIdentifier("id attribute"));
  }
  CCDB_ASSIGN_OR_RETURN(cqa::FeatureSet lhs,
                        cqa::FeatureSet::FromRelation(*operands.first,
                                                      id_attr));
  CCDB_ASSIGN_OR_RETURN(cqa::FeatureSet rhs,
                        cqa::FeatureSet::FromRelation(*operands.second,
                                                      id_attr));
  return cqa::BufferJoin(lhs, rhs, distance);
}

Result<Relation> EvalKNearest(TokenStream* ts, Database* db) {
  CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(ts, db));
  CCDB_RETURN_IF_ERROR(ts->ExpectKeyword("k"));
  CCDB_ASSIGN_OR_RETURN(Rational k_value, ParseCoefficient(ts));
  if (!k_value.IsInteger() || k_value.Sign() < 0) {
    return Status::ParseError("k must be a non-negative integer");
  }
  CCDB_ASSIGN_OR_RETURN(int64_t k, k_value.numerator().ToInt64());
  std::string id_attr = "fid";
  if (ts->TryKeyword("using")) {
    CCDB_ASSIGN_OR_RETURN(id_attr, ts->ExpectIdentifier("id attribute"));
  }
  CCDB_ASSIGN_OR_RETURN(cqa::FeatureSet lhs,
                        cqa::FeatureSet::FromRelation(*operands.first,
                                                      id_attr));
  CCDB_ASSIGN_OR_RETURN(cqa::FeatureSet rhs,
                        cqa::FeatureSet::FromRelation(*operands.second,
                                                      id_attr));
  return cqa::KNearest(lhs, rhs, static_cast<size_t>(k));
}

}  // namespace

Result<std::string> ExecuteStatement(const std::string& statement,
                                     Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  TokenStream ts(std::move(tokens));
  CCDB_ASSIGN_OR_RETURN(std::string step_name,
                        ts.ExpectIdentifier("step name"));
  CCDB_RETURN_IF_ERROR(ts.ExpectSymbol("="));

  Result<Relation> result = Status::Internal("unset");
  if (ts.TryKeyword("select")) {
    result = EvalSelect(&ts, db);
  } else if (ts.TryKeyword("project")) {
    result = EvalProject(&ts, db);
  } else if (ts.TryKeyword("join")) {
    CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(&ts, db));
    result = cqa::NaturalJoin(*operands.first, *operands.second);
  } else if (ts.TryKeyword("product")) {
    CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(&ts, db));
    result = cqa::CrossProduct(*operands.first, *operands.second);
  } else if (ts.TryKeyword("intersect")) {
    CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(&ts, db));
    result = cqa::Intersect(*operands.first, *operands.second);
  } else if (ts.TryKeyword("union")) {
    CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(&ts, db));
    result = cqa::Union(*operands.first, *operands.second);
  } else if (ts.TryKeyword("minus") || ts.TryKeyword("difference")) {
    CCDB_ASSIGN_OR_RETURN(auto operands, ParseBinaryOperands(&ts, db));
    result = cqa::Difference(*operands.first, *operands.second);
  } else if (ts.TryKeyword("rename")) {
    result = EvalRename(&ts, db);
  } else if (ts.TryKeyword("normalize")) {
    CCDB_ASSIGN_OR_RETURN(std::string rel_name,
                          ts.ExpectIdentifier("relation name"));
    CCDB_ASSIGN_OR_RETURN(const Relation* rel, GetRelation(db, rel_name));
    Relation normalized = *rel;
    normalized.Normalize();
    normalized.RemoveSubsumed();
    result = std::move(normalized);
  } else if (TryHyphenKeyword(&ts, "buffer", "join")) {
    result = EvalBufferJoin(&ts, db);
  } else if (TryHyphenKeyword(&ts, "k", "nearest")) {
    result = EvalKNearest(&ts, db);
  } else {
    return Status::ParseError("unknown operator '" + ts.Peek().text + "'");
  }
  if (!result.ok()) return result.status();
  if (!ts.AtEnd()) {
    return Status::ParseError("trailing input: '" + ts.Peek().text + "'");
  }
  db->CreateOrReplace(step_name, std::move(result).value());
  return step_name;
}

Result<std::string> ExecuteScript(const std::string& script, Database* db) {
  std::istringstream in(script);
  std::string line;
  size_t line_no = 0;
  std::string last_step;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    auto step = ExecuteStatement(trimmed, db);
    if (!step.ok()) {
      return Status(step.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        step.status().message());
    }
    last_step = *step;
  }
  if (last_step.empty()) {
    return Status::InvalidArgument("script contains no statements");
  }
  return last_step;
}

Result<Relation> RunQuery(const std::string& script, Database* db) {
  CCDB_ASSIGN_OR_RETURN(std::string last, ExecuteScript(script, db));
  CCDB_ASSIGN_OR_RETURN(const Relation* rel, db->Get(last));
  return *rel;
}

Result<std::string> ExecuteScriptTraced(const std::string& script,
                                        Database* db, obs::TraceNode* root) {
  std::optional<obs::CounterScope> scope;
  if (!obs::TracingActive()) scope.emplace();
  root->label = "Script";
  const auto script_start = std::chrono::steady_clock::now();
  std::istringstream in(script);
  std::string line;
  size_t line_no = 0;
  std::string last_step;
  double children_wall_us = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    obs::TraceNode& span = root->children.emplace_back();
    span.label = trimmed;
    const obs::LayerCounters before = obs::ActiveSnapshot();
    const auto start = std::chrono::steady_clock::now();
    auto step = ExecuteStatement(trimmed, db);
    span.wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    span.self_us = span.wall_us;  // statements are leaves of this trace
    span.counters = obs::ActiveSnapshot() - before;
    children_wall_us += span.wall_us;
    if (!step.ok()) {
      return Status(step.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        step.status().message());
    }
    // A statement's input cardinality is opaque here (it references
    // arbitrary earlier steps), so tuples_in stays zero.
    if (auto rel = db->Get(*step); rel.ok()) {
      span.tuples_out = (*rel)->size();
    }
    last_step = *step;
  }
  if (last_step.empty()) {
    return Status::InvalidArgument("script contains no statements");
  }
  root->wall_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - script_start)
                      .count();
  root->self_us = std::max(0.0, root->wall_us - children_wall_us);
  root->tuples_out = root->children.back().tuples_out;
  return last_step;
}

namespace {

/// Applies `fn(tokens)` to every non-blank, non-comment statement line.
template <typename Fn>
Status ForEachStatement(const std::string& script, Fn fn) {
  std::istringstream in(script);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto tokens = Tokenize(trimmed);
    if (!tokens.ok()) {
      return Status(tokens.status().code(),
                    "line " + std::to_string(line_no) + ": " +
                        tokens.status().message());
    }
    if (tokens->size() <= 1) continue;  // only the kEnd sentinel
    fn(*tokens);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> CanonicalizeScript(const std::string& script) {
  std::string out;
  Status s = ForEachStatement(script, [&out](const std::vector<Token>& ts) {
    if (!out.empty()) out += '\n';
    bool first = true;
    for (const Token& t : ts) {
      if (t.Is(TokenKind::kEnd)) break;
      if (!first) out += ' ';
      first = false;
      if (t.Is(TokenKind::kString)) {
        out += '"';
        out += t.text;
        out += '"';
      } else {
        out += t.text;
      }
    }
  });
  CCDB_RETURN_IF_ERROR(s);
  return out;
}

Result<std::vector<std::string>> ScriptInputs(const std::string& script) {
  std::set<std::string> defined;
  std::set<std::string> inputs;
  Status s = ForEachStatement(
      script, [&defined, &inputs](const std::vector<Token>& ts) {
        // Statement shape: <step> = <body>. Everything after the step name
        // that is an identifier and not an already-defined step is a
        // potential catalog read.
        for (size_t i = 1; i < ts.size(); ++i) {
          const Token& t = ts[i];
          if (t.Is(TokenKind::kIdentifier) && !defined.count(t.text)) {
            inputs.insert(t.text);
          }
        }
        if (!ts.empty() && ts[0].Is(TokenKind::kIdentifier)) {
          defined.insert(ts[0].text);
        }
      });
  CCDB_RETURN_IF_ERROR(s);
  return std::vector<std::string>(inputs.begin(), inputs.end());
}

TxnStatement ClassifyTxnStatement(const std::string& script) {
  std::istringstream in(script);
  std::string line;
  std::string statement;
  while (std::getline(in, line)) {
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!statement.empty()) return TxnStatement::kNone;  // multi-statement
    statement = std::move(trimmed);
  }
  if (statement.empty()) return TxnStatement::kNone;

  // Split into whitespace-separated words, uppercased.
  std::vector<std::string> words;
  std::istringstream tokens(statement);
  std::string word;
  while (tokens >> word) {
    for (char& c : word) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    words.push_back(word);
  }
  if (words.empty() || words.size() > 2) return TxnStatement::kNone;
  if (words.size() == 2 && words[1] != "TRANSACTION") {
    return TxnStatement::kNone;
  }
  if (words[0] == "BEGIN") return TxnStatement::kBegin;
  if (words[0] == "COMMIT") return TxnStatement::kCommit;
  if (words[0] == "ROLLBACK") return TxnStatement::kRollback;
  return TxnStatement::kNone;
}

}  // namespace ccdb::lang
