#include "lang/expr_parser.h"

namespace ccdb::lang {

std::string ParsedComparison::ToString() const {
  auto side = [](const ParsedSide& s) {
    return s.is_string ? "\"" + s.string_literal + "\"" : s.expr.ToString();
  };
  return side(lhs) + " " + op + " " + side(rhs);
}

Result<Rational> ParseCoefficient(TokenStream* ts) {
  if (!ts->Peek().Is(TokenKind::kNumber)) {
    return Status::ParseError("expected number, got '" + ts->Peek().text +
                              "'");
  }
  std::string text = ts->Next().text;
  // Fraction: NUMBER '/' NUMBER (both plain).
  if (ts->Peek().IsSymbol("/") && ts->Peek(1).Is(TokenKind::kNumber)) {
    ts->Next();  // '/'
    text += "/" + ts->Next().text;
  }
  return Rational::FromString(text);
}

namespace {

/// term := coeff ['*'] ident | coeff | ident
///
/// Juxtaposed multiplication (`2x`, `3/2y`) requires the tokens to be
/// adjacent in the input: `select t = 6 from R` must NOT read `6 from` as
/// a coefficient times a variable named "from". With whitespace, use `*`.
Result<LinearExpr> ParseTerm(TokenStream* ts) {
  if (ts->Peek().Is(TokenKind::kNumber)) {
    Token first = ts->Next();
    std::string text = first.text;
    size_t end = first.position + first.text.size();
    // Adjacent fraction: NUMBER '/' NUMBER with no spaces (3/2).
    if (ts->Peek().IsSymbol("/") && ts->Peek().position == end &&
        ts->Peek(1).Is(TokenKind::kNumber) &&
        ts->Peek(1).position == end + 1) {
      ts->Next();  // '/'
      Token denom = ts->Next();
      text += "/" + denom.text;
      end = denom.position + denom.text.size();
    }
    CCDB_ASSIGN_OR_RETURN(Rational coeff, Rational::FromString(text));
    // Optional '*' before the variable, or adjacent juxtaposition.
    if (ts->TrySymbol("*")) {
      CCDB_ASSIGN_OR_RETURN(std::string var,
                            ts->ExpectIdentifier("variable after '*'"));
      return LinearExpr::Term(var, std::move(coeff));
    }
    if (ts->Peek().Is(TokenKind::kIdentifier) &&
        ts->Peek().position == end) {
      return LinearExpr::Term(ts->Next().text, std::move(coeff));
    }
    return LinearExpr::Constant(std::move(coeff));
  }
  if (ts->Peek().Is(TokenKind::kIdentifier)) {
    return LinearExpr::Variable(ts->Next().text);
  }
  return Status::ParseError("expected term, got '" + ts->Peek().text + "'");
}

}  // namespace

Result<LinearExpr> ParseLinearExpr(TokenStream* ts) {
  LinearExpr expr;
  bool negate = ts->TrySymbol("-");
  if (!negate) ts->TrySymbol("+");
  CCDB_ASSIGN_OR_RETURN(LinearExpr first, ParseTerm(ts));
  expr = negate ? -first : first;
  while (true) {
    bool minus;
    if (ts->TrySymbol("+")) {
      minus = false;
    } else if (ts->TrySymbol("-")) {
      minus = true;
    } else {
      break;
    }
    CCDB_ASSIGN_OR_RETURN(LinearExpr term, ParseTerm(ts));
    expr = minus ? expr - term : expr + term;
  }
  return expr;
}

namespace {

Result<ParsedSide> ParseSide(TokenStream* ts) {
  ParsedSide side;
  if (ts->Peek().Is(TokenKind::kString)) {
    side.is_string = true;
    side.string_literal = ts->Next().text;
    return side;
  }
  CCDB_ASSIGN_OR_RETURN(side.expr, ParseLinearExpr(ts));
  return side;
}

bool IsComparisonOp(const Token& t) {
  return t.Is(TokenKind::kSymbol) &&
         (t.text == "=" || t.text == "==" || t.text == "<=" ||
          t.text == "<" || t.text == ">=" || t.text == ">" ||
          t.text == "!=");
}

/// True when the expression is exactly one bare attribute `1·name`.
std::optional<std::string> AsBareAttribute(const ParsedSide& side) {
  if (side.is_string) return std::nullopt;
  if (!side.expr.constant().IsZero()) return std::nullopt;
  if (side.expr.terms().size() != 1) return std::nullopt;
  const auto& [name, coeff] = *side.expr.terms().begin();
  if (coeff != Rational(1)) return std::nullopt;
  return name;
}

/// True when the expression is a constant (no variables).
std::optional<Rational> AsConstant(const ParsedSide& side) {
  if (side.is_string || !side.expr.IsConstant()) return std::nullopt;
  return side.expr.constant();
}

}  // namespace

Result<ParsedComparison> ParseComparison(TokenStream* ts) {
  ParsedComparison cmp;
  CCDB_ASSIGN_OR_RETURN(cmp.lhs, ParseSide(ts));
  if (!IsComparisonOp(ts->Peek())) {
    return Status::ParseError("expected comparison operator, got '" +
                              ts->Peek().text + "'");
  }
  cmp.op = ts->Next().text;
  if (cmp.op == "==") cmp.op = "=";
  CCDB_ASSIGN_OR_RETURN(cmp.rhs, ParseSide(ts));
  return cmp;
}

Result<std::vector<ParsedComparison>> ParseComparisonList(
    const std::string& text) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  std::vector<ParsedComparison> out;
  if (ts.AtEnd()) return out;
  while (true) {
    CCDB_ASSIGN_OR_RETURN(ParsedComparison cmp, ParseComparison(&ts));
    out.push_back(std::move(cmp));
    if (!ts.TrySymbol(",")) break;
  }
  if (!ts.AtEnd()) {
    return Status::ParseError("trailing input after comparisons: '" +
                              ts.Peek().text + "'");
  }
  return out;
}

namespace {

/// Is `name` a string-typed relational attribute of `schema`?
bool IsStringAttr(const Schema& schema, const std::string& name) {
  const Attribute* attr = schema.Find(name);
  return attr != nullptr && attr->domain == AttributeDomain::kString;
}

}  // namespace

Result<Predicate> BindPredicate(const Schema& schema,
                                const std::vector<ParsedComparison>& parsed) {
  Predicate pred;
  for (const ParsedComparison& cmp : parsed) {
    const bool is_eq = cmp.op == "=";
    const bool is_ne = cmp.op == "!=";
    auto lhs_attr = AsBareAttribute(cmp.lhs);
    auto rhs_attr = AsBareAttribute(cmp.rhs);

    // Quoted string on either side: string atom.
    if (cmp.lhs.is_string || cmp.rhs.is_string) {
      if (!is_eq && !is_ne) {
        return Status::ParseError("strings only compare with = or !=: " +
                                  cmp.ToString());
      }
      if (cmp.lhs.is_string && cmp.rhs.is_string) {
        return Status::ParseError("comparison of two literals: " +
                                  cmp.ToString());
      }
      const ParsedSide& attr_side = cmp.lhs.is_string ? cmp.rhs : cmp.lhs;
      const ParsedSide& lit_side = cmp.lhs.is_string ? cmp.lhs : cmp.rhs;
      auto attr = AsBareAttribute(attr_side);
      if (!attr) {
        return Status::ParseError("string compared to non-attribute: " +
                                  cmp.ToString());
      }
      StringAtom atom =
          StringAtom::EqualsLiteral(*attr, lit_side.string_literal);
      atom.negated = is_ne;
      pred.strings.push_back(std::move(atom));
      continue;
    }

    // attr (=|!=) attr where either is a string attribute: string atom
    // (e.g. the paper's `LandID = A` with A as a bare literal is handled
    // below, since `A` is usually not an attribute of the schema).
    if ((is_eq || is_ne) && lhs_attr && rhs_attr) {
      bool lhs_string = IsStringAttr(schema, *lhs_attr);
      bool rhs_string = IsStringAttr(schema, *rhs_attr);
      if (lhs_string && rhs_string) {
        StringAtom atom = StringAtom::EqualsAttr(*lhs_attr, *rhs_attr);
        atom.negated = is_ne;
        pred.strings.push_back(std::move(atom));
        continue;
      }
      if (lhs_string != rhs_string) {
        // One side is a string attribute, the other a bare identifier that
        // is not in the schema: treat it as an unquoted literal (§3.3
        // style `select LandID=A`).
        const std::string& attr = lhs_string ? *lhs_attr : *rhs_attr;
        const std::string& literal = lhs_string ? *rhs_attr : *lhs_attr;
        if (schema.Has(literal)) {
          return Status::InvalidArgument(
              "cannot compare string attribute '" + attr +
              "' with non-string attribute '" + literal + "'");
        }
        StringAtom atom = StringAtom::EqualsLiteral(attr, literal);
        atom.negated = is_ne;
        pred.strings.push_back(std::move(atom));
        continue;
      }
    }
    // Bare `stringattr = ident` where ident is not an attribute at all is
    // covered above. Everything else must be a linear constraint.
    if (is_ne) {
      return Status::Unsupported(
          "numeric '!=' is not an atomic linear constraint: " +
          cmp.ToString());
    }
    CCDB_ASSIGN_OR_RETURN(Constraint c,
                          Constraint::Make(cmp.lhs.expr, cmp.op,
                                           cmp.rhs.expr));
    pred.linear.push_back(std::move(c));
  }
  return pred;
}

Result<Tuple> BindTuple(const Schema& schema,
                        const std::vector<ParsedComparison>& parsed) {
  Tuple tuple;
  for (const ParsedComparison& cmp : parsed) {
    auto lhs_attr = AsBareAttribute(cmp.lhs);
    // Relational assignment: attr = literal / constant.
    if (cmp.op == "=" && lhs_attr) {
      const Attribute* attr = schema.Find(*lhs_attr);
      if (attr != nullptr && attr->kind == AttributeKind::kRelational) {
        if (attr->domain == AttributeDomain::kString) {
          std::string literal;
          if (cmp.rhs.is_string) {
            literal = cmp.rhs.string_literal;
          } else if (auto bare = AsBareAttribute(cmp.rhs);
                     bare && !schema.Has(*bare)) {
            literal = *bare;  // unquoted literal
          } else {
            return Status::ParseError("expected string value for '" +
                                      *lhs_attr + "': " + cmp.ToString());
          }
          tuple.SetValue(*lhs_attr, Value::String(std::move(literal)));
          continue;
        }
        auto constant = AsConstant(cmp.rhs);
        if (!constant) {
          return Status::ParseError("expected numeric constant for '" +
                                    *lhs_attr + "': " + cmp.ToString());
        }
        tuple.SetValue(*lhs_attr, Value::Number(std::move(*constant)));
        continue;
      }
    }
    // Otherwise: a constraint over constraint attributes.
    if (cmp.lhs.is_string || cmp.rhs.is_string) {
      return Status::ParseError("string comparison outside relational "
                                "assignment: " +
                                cmp.ToString());
    }
    CCDB_ASSIGN_OR_RETURN(
        Constraint c, Constraint::Make(cmp.lhs.expr, cmp.op, cmp.rhs.expr));
    tuple.AddConstraint(std::move(c));
  }
  return tuple;
}

}  // namespace ccdb::lang
