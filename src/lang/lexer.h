#ifndef CCDB_LANG_LEXER_H_
#define CCDB_LANG_LEXER_H_

/// \file lexer.h
/// Tokenizer for the CQA/CDB ASCII surface syntax.
///
/// §3.3 of the paper: "instead of using the operator symbols ... we use
/// their English equivalents in CQA/CDB. This allows queries to be
/// representable in ASCII, for portability". The same token set serves the
/// step-based query language, selection conditions, and the relation data
/// file format.

#include <string>
#include <vector>

#include "util/status.h"

namespace ccdb::lang {

enum class TokenKind {
  kIdentifier,  ///< attribute / relation names, keywords
  kNumber,      ///< 12, 2.5 (sign handled by the parser)
  kString,      ///< "quoted"
  kSymbol,      ///< = == <= < >= > != + - * / , ; ( ) :
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t position = 0;  ///< byte offset, for error messages

  bool Is(TokenKind k) const { return kind == k; }
  bool IsSymbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test.
  bool IsKeyword(const std::string& word) const;
};

/// Tokenizes one line/fragment. Comparison operators are emitted as single
/// symbol tokens ("<=", "!=", "==", ...). Fails on unterminated strings or
/// unknown characters.
Result<std::vector<Token>> Tokenize(const std::string& text);

/// Token cursor with convenience accessors used by all parsers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().Is(TokenKind::kEnd); }

  /// Consumes the next token if it is the given symbol.
  bool TrySymbol(const std::string& symbol);
  /// Consumes the next token if it is the given keyword (case-insensitive).
  bool TryKeyword(const std::string& word);

  /// Consumes an identifier or fails with a ParseError naming `what`.
  Result<std::string> ExpectIdentifier(const std::string& what);
  /// Consumes the given symbol or fails.
  Status ExpectSymbol(const std::string& symbol);
  /// Consumes the given keyword or fails.
  Status ExpectKeyword(const std::string& word);

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace ccdb::lang

#endif  // CCDB_LANG_LEXER_H_
