#ifndef CCDB_LANG_EXPR_PARSER_H_
#define CCDB_LANG_EXPR_PARSER_H_

/// \file expr_parser.h
/// Parsing of linear expressions and comparison atoms.
///
/// Grammar (coefficients are non-negative rational literals; signs come
/// from +/- operators):
///
///   comparison-list := comparison (',' comparison)*
///   comparison      := side op side         op ∈ {=, ==, <=, <, >=, >, !=}
///   side            := "string literal" | expr
///   expr            := ['-'] term (('+'|'-') term)*
///   term            := coeff ['*'] ident | coeff | ident
///   coeff           := NUMBER ['/' NUMBER]      e.g. 2, 2.5, 3/2
///
/// Comparisons are parsed *unbound*: `LandID = A` could be a string
/// equality (if LandID is a string attribute; `A` a bare literal, matching
/// the paper's unquoted style in Query 1 of §3.3) or a linear constraint
/// over two rational attributes. `Bind*` resolves against a schema.

#include <optional>
#include <vector>

#include "constraint/constraint.h"
#include "core/predicate.h"
#include "data/tuple.h"
#include "lang/lexer.h"

namespace ccdb::lang {

/// One side of a comparison before schema binding.
struct ParsedSide {
  LinearExpr expr;                  ///< when !is_string
  bool is_string = false;           ///< quoted literal
  std::string string_literal;       ///< when is_string
};

/// A schema-unbound comparison.
struct ParsedComparison {
  ParsedSide lhs;
  std::string op;  ///< "=", "<=", "<", ">=", ">", "!="
  ParsedSide rhs;

  std::string ToString() const;
};

/// Parses a non-negative rational literal (NUMBER ['/' NUMBER]).
Result<Rational> ParseCoefficient(TokenStream* ts);

/// Parses a linear expression.
Result<LinearExpr> ParseLinearExpr(TokenStream* ts);

/// Parses one comparison.
Result<ParsedComparison> ParseComparison(TokenStream* ts);

/// Parses a comma-separated comparison list from text (entire input).
Result<std::vector<ParsedComparison>> ParseComparisonList(
    const std::string& text);

/// Resolves comparisons into a selection predicate under `schema`:
///  - quoted literals and string attributes become StringAtoms
///    (`a = "x"`, `a = b`, and their != forms);
///  - everything over rational attributes becomes linear constraints
///    (numeric != is rejected: it is not an atomic linear constraint).
Result<Predicate> BindPredicate(const Schema& schema,
                                const std::vector<ParsedComparison>& parsed);

/// Resolves comparisons into a data tuple under `schema`: `attr = value`
/// over relational attributes become stored values; the rest must be
/// constraints over constraint attributes.
Result<Tuple> BindTuple(const Schema& schema,
                        const std::vector<ParsedComparison>& parsed);

}  // namespace ccdb::lang

#endif  // CCDB_LANG_EXPR_PARSER_H_
