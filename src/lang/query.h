#ifndef CCDB_LANG_QUERY_H_
#define CCDB_LANG_QUERY_H_

/// \file query.h
/// The step-based CQA query language and its executor.
///
/// Queries are sequences of named steps, exactly the style of the paper's
/// §3.3 Hurricane case study ("CQA/CDB queries are broken up into multiple
/// steps"):
///
///   # Query 3: whose land was hit between time 4 and 9
///   R0 = join Landownership and Land
///   R1 = select t >= 4, t <= 9 from Hurricane
///   R2 = join R0 and R1
///   R3 = project R2 on name
///
/// Statement forms (keywords case-insensitive):
///   <name> = select <comparisons> from <rel>
///   <name> = project <rel> on <attr>, <attr>, ...
///   <name> = join <rel> and <rel>
///   <name> = product <rel> and <rel>
///   <name> = intersect <rel> and <rel>
///   <name> = union <rel> and <rel>
///   <name> = minus <rel> and <rel>            (also: difference)
///   <name> = rename <attr> to <attr> in <rel>
///   <name> = normalize <rel>                   (drop unsat/redundant/subsumed)
///   <name> = buffer-join <rel> and <rel> within <number> [using <idattr>]
///   <name> = k-nearest <rel> and <rel> k <count> [using <idattr>]
///
/// Each step's result is registered in the database under its name
/// (replacing any previous step of the same name), so later steps can
/// reference it; the last step is the query result.

#include <string>
#include <vector>

#include "data/database.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ccdb::lang {

/// Executes one statement against `db`; returns the step name it defined.
Result<std::string> ExecuteStatement(const std::string& statement,
                                     Database* db);

/// Executes a multi-line script (blank lines and # comments ignored).
/// Returns the name of the last step; fails on the first error with its
/// line number.
Result<std::string> ExecuteScript(const std::string& script, Database* db);

/// Executes a script and returns the final relation (by value).
Result<Relation> RunQuery(const std::string& script, Database* db);

/// Executes a script like ExecuteScript while recording one child span
/// per statement under `root`: the statement text as the label, its wall
/// time, its result cardinality as tuples_out, and the layer-counter
/// deltas attributable to it. This is the trace path for scripts outside
/// the compilable algebra subset (see compile.h) — statements stay opaque
/// but still get timed and attributed. Installs an obs::CounterScope for
/// the duration if none is active.
Result<std::string> ExecuteScriptTraced(const std::string& script,
                                        Database* db, obs::TraceNode* root);

/// Canonical text of a script: comments and blank lines dropped, every
/// statement re-emitted as its token texts joined by single spaces (string
/// literals re-quoted), statements joined by '\n'. Two scripts with equal
/// canonical text execute identically against equal catalogs — the
/// service layer's result-cache key. Identifier case is preserved (names
/// are case-sensitive), so `SELECT` vs `select` canonicalize differently;
/// that only costs a cache miss, never a wrong hit.
Result<std::string> CanonicalizeScript(const std::string& script);

/// Over-approximation of the catalog names a script reads but does not
/// itself define: every identifier token that is not a step name defined
/// by an earlier (or the same) statement, sorted and deduplicated. The
/// list includes attribute names and keywords — callers filter by catalog
/// membership; over-inclusion only widens a cache key, under-inclusion
/// cannot happen.
Result<std::vector<std::string>> ScriptInputs(const std::string& script);

/// Transaction-control statements, recognized before a script reaches the
/// step-statement executor.
enum class TxnStatement {
  kNone,      ///< not a transaction control — a normal script
  kBegin,     ///< BEGIN [TRANSACTION]
  kCommit,    ///< COMMIT [TRANSACTION]
  kRollback,  ///< ROLLBACK [TRANSACTION]
};

/// Classifies a whole submission as a transaction control. Matches only
/// when, after stripping comments and blank lines, the script is exactly
/// one statement of the form `BEGIN` / `COMMIT` / `ROLLBACK` (optionally
/// followed by `TRANSACTION`), case-insensitive. Anything else — including
/// a control keyword mixed into a multi-statement script — is kNone and
/// flows through normal execution (where `BEGIN` is a parse error, as
/// before).
TxnStatement ClassifyTxnStatement(const std::string& script);

}  // namespace ccdb::lang

#endif  // CCDB_LANG_QUERY_H_
