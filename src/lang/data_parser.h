#ifndef CCDB_LANG_DATA_PARSER_H_
#define CCDB_LANG_DATA_PARSER_H_

/// \file data_parser.h
/// The `.cdb` relation data file format.
///
/// A text format for heterogeneous constraint databases, line-based:
///
///   # comment
///   relation Land
///   schema landId: string relational; x: rational constraint;
///          y: rational constraint         # (one logical line)
///   tuple landId = "A", x >= 0, x <= 2, y >= 0, y <= 2
///   tuple landId = "B", x >= 2, x <= 3, y >= 1, y <= 2
///
///   relation Hurricane
///   schema t: rational constraint; x: rational constraint; ...
///   tuple t >= 0, t <= 1, x = 10t, y = 5t
///
/// Relational attributes take `attr = value` items (quoted strings or bare
/// identifiers for string attributes, numeric constants for rational
/// ones); constraint attributes take linear constraint items. A file may
/// hold many relations.

#include <string>

#include "data/database.h"
#include "util/status.h"

namespace ccdb::lang {

/// Parses a `.cdb` document and registers each relation into `db`.
/// Fails (without partial registration of the failing relation) on the
/// first syntax or schema error, identifying the line number.
Status LoadDatabaseText(const std::string& text, Database* db);

/// Reads a file from disk and parses it.
Status LoadDatabaseFile(const std::string& path, Database* db);

/// Renders a schema declaration in the data-file syntax.
std::string FormatSchemaDeclaration(const Schema& schema);

/// Renders one tuple as a `tuple ...` line in the data-file syntax.
std::string FormatTupleLine(const Tuple& tuple);

/// Renders a whole database as a parseable `.cdb` document — the exact
/// inverse of `LoadDatabaseText` (round-trips bit-exactly thanks to the
/// rational text encoding).
std::string FormatDatabaseText(const Database& db);

/// Writes `FormatDatabaseText(db)` to `path`.
Status SaveDatabaseFile(const std::string& path, const Database& db);

}  // namespace ccdb::lang

#endif  // CCDB_LANG_DATA_PARSER_H_
