#include "lang/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace ccdb::lang {

bool Token::IsKeyword(const std::string& word) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, word);
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment to end of line
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdentifier, text.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       (text[i] == '.' && !seen_dot))) {
        if (text[i] == '.') seen_dot = true;
        ++i;
      }
      tokens.push_back(
          {TokenKind::kNumber, text.substr(start, i - start), start});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && text[i] != '"') {
        value += text[i];
        ++i;
      }
      if (i == n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back({TokenKind::kString, value, start});
      continue;
    }
    // Multi-char comparison symbols first.
    auto two = text.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "==" ||
        two == "<>") {
      tokens.push_back({TokenKind::kSymbol, two == "<>" ? "!=" : two, start});
      i += 2;
      continue;
    }
    if (std::string("=<>+-*/,;():").find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

const Token& TokenStream::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[idx];
}

Token TokenStream::Next() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenStream::TrySymbol(const std::string& symbol) {
  if (Peek().IsSymbol(symbol)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::TryKeyword(const std::string& word) {
  if (Peek().IsKeyword(word)) {
    Next();
    return true;
  }
  return false;
}

Result<std::string> TokenStream::ExpectIdentifier(const std::string& what) {
  if (!Peek().Is(TokenKind::kIdentifier)) {
    return Status::ParseError("expected " + what + ", got '" + Peek().text +
                              "' at offset " + std::to_string(Peek().position));
  }
  return Next().text;
}

Status TokenStream::ExpectSymbol(const std::string& symbol) {
  if (!TrySymbol(symbol)) {
    return Status::ParseError("expected '" + symbol + "', got '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().position));
  }
  return Status::OK();
}

Status TokenStream::ExpectKeyword(const std::string& word) {
  if (!TryKeyword(word)) {
    return Status::ParseError("expected '" + word + "', got '" + Peek().text +
                              "' at offset " +
                              std::to_string(Peek().position));
  }
  return Status::OK();
}

}  // namespace ccdb::lang
