// The missing-attribute inconsistency and the C/R flag (§3 of the paper).
//
// Reproduces Proposition 1's Examples 2 and 3 interactively: the same data
// under a pure-constraint schema and under the heterogeneous schema, and
// how the C/R flag restores upward compatibility with relational
// databases.

#include <cstdlib>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

LinearExpr Var(const std::string& name) { return LinearExpr::Variable(name); }
LinearExpr Num(int64_t v) { return LinearExpr::Constant(Rational(v)); }

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

Predicate YEquals17() {
  Predicate p;
  p.linear.push_back(Constraint::Eq(Var("y"), Num(17)));
  return p;
}

}  // namespace

int main() {
  std::cout << "CCDB: why the schema needs a C/R flag (paper §3)\n\n";

  // ---- Example 2: the inconsistency ------------------------------------
  std::cout << "Example 2. R = {(x = 1)} over attributes {x, y}; query "
               "Q = select y = 17.\n\n";

  // Broad: both attributes are constraint attributes.
  Schema broad = Schema::Make({Schema::ConstraintRational("x"),
                               Schema::ConstraintRational("y")})
                     .value();
  Relation r_broad(broad);
  {
    Tuple t;
    t.AddConstraint(Constraint::Eq(Var("x"), Num(1)));
    if (Status s = r_broad.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  auto q_broad = cqa::Select(r_broad, YEquals17());
  if (!q_broad.ok()) return Fail(q_broad.status());
  std::cout << "constraint interpretation (y broad — unconstrained y means "
               "ALL values):\n  Q(R) = "
            << (q_broad->empty() ? "{}" : q_broad->tuples()[0].ToString())
            << "\n\n";

  // Narrow: y is a relational attribute; missing means null.
  Schema narrow = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::RelationalRational("y")})
                      .value();
  Relation r_narrow(narrow);
  {
    Tuple t;
    t.AddConstraint(Constraint::Eq(Var("x"), Num(1)));
    if (Status s = r_narrow.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  auto q_narrow = cqa::Select(r_narrow, YEquals17());
  if (!q_narrow.ok()) return Fail(q_narrow.status());
  std::cout << "relational interpretation (y narrow — missing means null, "
               "matches nothing):\n  Q(R) = "
            << (q_narrow->empty() ? "{} (empty)" :
                q_narrow->tuples()[0].ToString())
            << "\n\n";
  std::cout << "Same data, same query, different answers — Proposition 1. "
               "The schema's C/R\nflag makes the intended semantics "
               "explicit per attribute.\n\n";

  // ---- Example 3: the dual behaviour -----------------------------------
  std::cout << "Example 3. R = {(x = 1), (y = 1), (x = 17, y = 17)} with\n"
               "schema [x: relational, y: constraint].\n\n";
  Schema dual = Schema::Make({Schema::RelationalRational("x"),
                              Schema::ConstraintRational("y")})
                    .value();
  Relation r(dual);
  {
    Tuple t;
    t.SetValue("x", Value::Number(1));
    if (Status s = r.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  {
    Tuple t;
    t.AddConstraint(Constraint::Eq(Var("y"), Num(1)));
    if (Status s = r.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  {
    Tuple t;
    t.SetValue("x", Value::Number(17));
    t.AddConstraint(Constraint::Eq(Var("y"), Num(17)));
    if (Status s = r.Insert(std::move(t)); !s.ok()) return Fail(s);
  }

  Predicate x17;
  x17.linear.push_back(Constraint::Eq(Var("x"), Num(17)));
  auto by_x = cqa::Select(r, x17);
  if (!by_x.ok()) return Fail(by_x.status());
  std::cout << "select x = 17 (narrow on x):\n" << by_x->ToString() << "\n\n";

  auto by_y = cqa::Select(r, YEquals17());
  if (!by_y.ok()) return Fail(by_y.status());
  std::cout << "select y = 17 (broad on y):\n" << by_y->ToString() << "\n\n";

  std::cout << "The asymmetry matches the paper exactly: the tuple (x = 1) "
               "has y\nunconstrained, so y = 17 selects it; the tuple "
               "(y = 1) has x null, so\nx = 17 cannot.\n";
  return EXIT_SUCCESS;
}
