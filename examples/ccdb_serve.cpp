// ccdb_serve: the CCDB network daemon.
//
// Serves the binary wire protocol (src/net/wire.h) over TCP, either as a
// *leader* — a durable QueryService whose WAL other nodes can ship — or
// as a *read replica* that bootstraps from a leader's snapshot, follows
// its committed WAL batches, and serves read-only queries.
//
// Usage:
//   ccdb_serve [--port N] [--workers N] [--status-port N]
//              [--event-log FILE] [file.cdb ...]                # leader
//   ccdb_serve --replica-of HOST:PORT [--port N] [--workers N]
//              [--status-port N] [--event-log FILE]             # replica
//
// Prints "listening on port N" once ready (scripts parse this line) and,
// with --status-port, "status on port N" for the HTTP scrape endpoint
// (GET /metrics, GET /healthz). --event-log appends structured JSONL
// operational events (connections, sheds, conflicts, re-syncs) to FILE.
// Then reads commands from stdin: `stats` prints metrics (and
// replication lag on a replica), `quit` exits. On stdin EOF the daemon
// keeps serving until SIGINT/SIGTERM — the shape tools/stress_net.sh and
// bench_net expect from a background server process.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

/// Parses "host:port"; empty host on failure.
std::pair<std::string, uint16_t> SplitHostPort(const std::string& arg) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) return {"", 0};
  const int port = std::atoi(arg.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return {"", 0};
  return {arg.substr(0, colon), static_cast<uint16_t>(port)};
}

/// Starts the HTTP status listener when requested; prints the bound port
/// so scripts (tools/stress_net.sh) can find an ephemeral one.
std::unique_ptr<net::StatusServer> MaybeStartStatus(bool enabled,
                                                    uint16_t status_port,
                                                    net::Server* server,
                                                    net::Replica* replica) {
  if (!enabled) return nullptr;
  net::StatusServerOptions opts;
  opts.port = status_port;
  opts.replica = replica;
  auto status = net::StatusServer::Start(server, opts);
  if (!status.ok()) {
    std::cerr << "error starting status server: "
              << status.status().ToString() << "\n";
    return nullptr;
  }
  std::cout << "status on port " << (*status)->port() << std::endl;
  return std::move(status).value();
}

/// Reads stdin commands until quit/EOF; after EOF, waits for a signal.
void CommandLoop(net::Server* server, net::Replica* replica) {
  std::string line;
  while (!g_stop.load() && std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") return;
    if (line == "promote") {
      // Failover by hand (tools/stress_net.sh drives this): catch up,
      // reopen writable, flip the front-end.
      if (replica == nullptr || !server->read_only()) {
        std::cout << "already leader (term " << server->term() << ")"
                  << std::endl;
        continue;
      }
      auto promoted = replica->Promote();
      if (!promoted.ok()) {
        std::cout << "promote failed: " << promoted.status().ToString()
                  << std::endl;
        continue;
      }
      server->Promote(promoted->term, promoted->store);
      std::cout << "promoted to term " << promoted->term << std::endl;
      continue;
    }
    if (line == "stats") {
      std::cout << "role=" << (server->read_only() ? "replica" : "leader")
                << " term=" << server->term() << "\n";
      if (replica != nullptr) {
        const net::Replica::Stats s = replica->stats();
        std::cout << "replica: applied_lsn=" << s.applied_lsn
                  << " leader_next_lsn=" << s.leader_next_lsn
                  << " lag_batches=" << s.lag_batches
                  << " batches_applied=" << s.batches_applied
                  << " snapshots=" << s.snapshots_installed
                  << " resyncs=" << s.resyncs
                  << " caught_up=" << (s.caught_up ? "yes" : "no") << "\n";
      }
      std::cout << server->MetricsText() << std::flush;
    }
  }
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool with_status = false;
  uint16_t status_port = 0;
  size_t workers = 4;
  std::string replica_of;
  std::string event_log_path;
  std::vector<std::string> data_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--status-port" && i + 1 < argc) {
      with_status = true;
      status_port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--replica-of" && i + 1 < argc) {
      replica_of = argv[++i];
    } else if (arg == "--event-log" && i + 1 < argc) {
      event_log_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: ccdb_serve [--port N] [--workers N] "
                   "[--status-port N] [--event-log FILE] "
                   "[--replica-of HOST:PORT] [file.cdb ...]\n";
      return 1;
    } else {
      data_files.push_back(arg);
    }
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::ofstream event_stream;
  std::unique_ptr<obs::EventLog> event_log;
  if (!event_log_path.empty()) {
    event_stream.open(event_log_path, std::ios::app);
    if (!event_stream) {
      std::cerr << "error opening event log " << event_log_path << "\n";
      return 1;
    }
    event_log = std::make_unique<obs::EventLog>(&event_stream);
  }

  if (!replica_of.empty()) {
    // --- Replica: follow a leader, serve read-only queries ---
    auto [host, leader_port] = SplitHostPort(replica_of);
    if (host.empty()) {
      std::cerr << "--replica-of needs HOST:PORT\n";
      return 1;
    }
    Database db;
    service::ServiceOptions options;
    options.num_workers = workers;
    options.event_log = event_log.get();
    service::QueryService service(&db, options);
    // Server first: the replica publishes its lag gauges into the
    // server's registry, so the scrape surfaces see them.
    net::ServerOptions sopts;
    sopts.port = port;
    sopts.read_only = true;
    sopts.server_name = "ccdb-replica";
    sopts.term = 0;  // learns its real term at promotion
    sopts.event_log = event_log.get();
    // The replica starts after the server (it publishes gauges into the
    // server's registry); the handler reads it through an atomic so a
    // PROMOTE racing startup sees either null or the live replica.
    std::atomic<net::Replica*> replica_ptr{nullptr};
    sopts.promote_handler = [&replica_ptr]() -> Result<net::Promotion> {
      net::Replica* r = replica_ptr.load();
      if (r == nullptr) {
        return Status::Unavailable("replica still starting");
      }
      auto promoted = r->Promote();
      if (!promoted.ok()) return promoted.status();
      net::Promotion out;
      out.term = promoted->term;
      out.store = promoted->store;
      return out;
    };
    auto server = net::Server::Start(&service, sopts);
    if (!server.ok()) {
      std::cerr << "error starting server: " << server.status().ToString()
                << "\n";
      return 1;
    }
    net::ReplicaOptions ropts;
    ropts.registry = &(*server)->registry();
    ropts.event_log = event_log.get();
    auto replica = net::Replica::Start(host, leader_port, &service, ropts);
    if (!replica.ok()) {
      std::cerr << "error connecting to leader: "
                << replica.status().ToString() << "\n";
      return 1;
    }
    replica_ptr.store(replica->get());
    std::cout << "listening on port " << (*server)->port() << " (replica of "
              << replica_of << ")" << std::endl;
    auto status = MaybeStartStatus(with_status, status_port, server->get(),
                                   replica->get());
    CommandLoop(server->get(), replica->get());
    if (status != nullptr) status->Shutdown();
    (*server)->Shutdown();
    (*replica)->Stop();
    return 0;
  }

  // --- Leader: durable store + WAL shipping ---
  Database db;
  for (const std::string& file : data_files) {
    Status loaded = lang::LoadDatabaseFile(file, &db);
    if (!loaded.ok()) {
      std::cerr << "error loading " << file << ": " << loaded.ToString()
                << "\n";
      return 1;
    }
  }
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::cerr << "error creating durable store: " << store.status().ToString()
              << "\n";
    return 1;
  }
  if (!db.Names().empty()) {
    Status committed = (*store)->CommitCatalog(db);
    if (!committed.ok()) {
      std::cerr << "error persisting initial catalog: "
                << committed.ToString() << "\n";
      return 1;
    }
  }
  service::ServiceOptions options;
  options.num_workers = workers;
  options.disk = &disk;
  options.store = store->get();
  options.event_log = event_log.get();
  service::QueryService service(&db, options);
  net::ServerOptions sopts;
  sopts.port = port;
  sopts.store = store->get();
  sopts.event_log = event_log.get();
  auto server = net::Server::Start(&service, sopts);
  if (!server.ok()) {
    std::cerr << "error starting server: " << server.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "listening on port " << (*server)->port() << " (leader)"
            << std::endl;
  auto status =
      MaybeStartStatus(with_status, status_port, server->get(), nullptr);
  CommandLoop(server->get(), nullptr);
  if (status != nullptr) status->Shutdown();
  (*server)->Shutdown();
  return 0;
}
