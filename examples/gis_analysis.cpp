// A GIS case study at a few hundred features.
//
// The paper motivates constraint databases with "medical, scientific, or
// geographic applications" and describes GIS data acquisition (§6.2):
// digitized region outlines and linear features. This example builds a
// synthetic county map — a jittered grid of county polygons, a meandering
// highway polyline, and point cities — entirely through the vector →
// constraint conversion path, persists it as a `.cdb` text database AND as
// pages on the simulated disk, reloads both, and runs the analysis
// queries GIS users actually ask:
//
//   1. which counties does the highway cross (join / buffer-join),
//   2. the 3 nearest cities to each city (k-nearest),
//   3. county areas straight from the vector form vs through clipping,
//   4. indexing advice for the county extents under a realistic workload.

#include <cstdlib>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

/// A jittered grid cell polygon (counties are convex quads here).
geom::Polygon CountyPolygon(Rng* rng, int64_t cx, int64_t cy, int64_t cell) {
  auto jitter = [&]() { return Rational(rng->UniformInt(-cell / 5, cell / 5)); };
  std::vector<geom::Point> ring{
      geom::Point(Rational(cx) + jitter(), Rational(cy) + jitter()),
      geom::Point(Rational(cx + cell) + jitter(), Rational(cy) + jitter()),
      geom::Point(Rational(cx + cell) + jitter(),
                  Rational(cy + cell) + jitter()),
      geom::Point(Rational(cx) + jitter(), Rational(cy + cell) + jitter())};
  auto hull = geom::ConvexHull(ring);
  while (hull.size() < 3) {
    hull = geom::ConvexHull({geom::Point(cx, cy), geom::Point(cx + cell, cy),
                             geom::Point(cx + cell, cy + cell),
                             geom::Point(cx, cy + cell)});
  }
  return geom::Polygon::Make(hull).value();
}

}  // namespace

int main() {
  std::cout << "CCDB GIS case study: counties, a highway, cities\n\n";
  Rng rng(1821);
  const int kGrid = 8;        // 8x8 = 64 counties
  const int64_t kCell = 350;  // world is ~2800 x 2800

  Schema spatial = Schema::Make({Schema::RelationalString("fid"),
                                 Schema::ConstraintRational("x"),
                                 Schema::ConstraintRational("y")})
                       .value();

  // --- Counties: digitized polygons -> constraint tuples -----------------
  Relation counties(spatial);
  std::vector<std::pair<std::string, geom::Polygon>> county_polys;
  for (int gx = 0; gx < kGrid; ++gx) {
    for (int gy = 0; gy < kGrid; ++gy) {
      std::string fid =
          "county_" + std::to_string(gx) + "_" + std::to_string(gy);
      geom::Polygon poly = CountyPolygon(&rng, gx * kCell, gy * kCell, kCell);
      county_polys.emplace_back(fid, poly);
      for (const Conjunction& piece :
           geom::PolygonToConstraintTuples(poly, "x", "y")) {
        Tuple t;
        t.SetValue("fid", Value::String(fid));
        t.SetConstraints(piece);
        if (Status s = counties.Insert(std::move(t)); !s.ok()) return Fail(s);
      }
    }
  }

  // --- Highway: a polyline meandering across the map ---------------------
  std::vector<geom::Point> waypoints;
  int64_t y = 200;
  for (int64_t x = -100; x <= kGrid * kCell + 100; x += 400) {
    waypoints.emplace_back(Rational(x), Rational(y));
    y += rng.UniformInt(-250, 450);
    y = std::max<int64_t>(0, std::min<int64_t>(kGrid * kCell, y));
  }
  geom::Polyline highway(waypoints);
  Relation highways(spatial);
  for (const Conjunction& seg :
       geom::PolylineToConstraintTuples(highway, "x", "y")) {
    Tuple t;
    t.SetValue("fid", Value::String("I-84"));
    t.SetConstraints(seg);
    if (Status s = highways.Insert(std::move(t)); !s.ok()) return Fail(s);
  }

  // --- Cities: points ------------------------------------------------------
  Relation cities(spatial);
  for (int i = 0; i < 40; ++i) {
    Tuple t;
    t.SetValue("fid", Value::String("city_" + std::to_string(i)));
    t.SetConstraints(geom::PointToConjunction(
        geom::Point(rng.UniformInt(0, kGrid * kCell),
                    rng.UniformInt(0, kGrid * kCell)),
        "x", "y"));
    if (Status s = cities.Insert(std::move(t)); !s.ok()) return Fail(s);
  }

  Database db;
  db.CreateOrReplace("Counties", counties);
  db.CreateOrReplace("Highways", highways);
  db.CreateOrReplace("Cities", cities);
  std::cout << "built: " << counties.size() << " county tuples ("
            << county_polys.size() << " counties), "
            << highways.size() << " highway segments, " << cities.size()
            << " cities\n";

  // --- Persistence round trips -------------------------------------------
  std::string path = "/tmp/ccdb_gis.cdb";
  if (Status s = lang::SaveDatabaseFile(path, db); !s.ok()) return Fail(s);
  Database text_reload;
  if (Status s = lang::LoadDatabaseFile(path, &text_reload); !s.ok()) {
    return Fail(s);
  }
  PageManager disk;
  BufferPool pool(&disk, 16);
  auto root = SaveDatabase(&pool, db);
  if (!root.ok()) return Fail(root.status());
  auto disk_reload = LoadDatabase(&pool, *root);
  if (!disk_reload.ok()) return Fail(disk_reload.status());
  std::cout << "persisted: " << path << " (text) and " << disk.num_pages()
            << " simulated disk pages (catalog root page " << *root
            << "); both reloads match: "
            << ((text_reload.Get("Counties").value()->size() ==
                 counties.size()) &&
                        (disk_reload->Get("Counties").value()->size() ==
                         counties.size())
                    ? "yes"
                    : "NO")
            << "\n\n";

  // --- Query 1: counties the highway crosses -------------------------------
  auto crossed = lang::RunQuery(
      "R0 = buffer-join Highways and Counties within 0\n", &db);
  if (!crossed.ok()) return Fail(crossed.status());
  std::cout << "counties crossed by I-84: " << crossed->size() << "\n";

  // Counties within 150 of the highway but NOT crossed (the buffer ring).
  auto nearby = lang::RunQuery(
      "R0 = buffer-join Highways and Counties within 150\n"
      "R1 = buffer-join Highways and Counties within 0\n"
      "R2 = minus R0 and R1\n",
      &db);
  if (!nearby.ok()) return Fail(nearby.status());
  std::cout << "counties within 150 of I-84 but not crossed: "
            << nearby->size() << "\n";

  // --- Query 2: 3 nearest cities to each city -------------------------------
  auto knn = lang::RunQuery("R0 = k-nearest Cities and Cities k 4\n", &db);
  if (!knn.ok()) return Fail(knn.status());
  // k=4 includes self (distance 0); 3 true neighbors per city.
  std::cout << "city k-nearest pairs (k=4, incl. self): " << knn->size()
            << "\n\n";

  // --- Query 3: areas both ways (§6 Example 8 + clipping) ------------------
  Rational total_area(0);
  for (const auto& [fid, poly] : county_polys) {
    total_area += poly.Area();
  }
  // Area of the map square covered by counties, via clipping each county
  // against the world box (identical when counties fit the world).
  std::vector<geom::Point> world{
      geom::Point(-1000, -1000), geom::Point(kGrid * kCell + 1000, -1000),
      geom::Point(kGrid * kCell + 1000, kGrid * kCell + 1000),
      geom::Point(-1000, kGrid * kCell + 1000)};
  Rational clipped_area(0);
  for (const auto& [fid, poly] : county_polys) {
    clipped_area += geom::IntersectionArea(poly.vertices(), world);
  }
  std::cout << "total county area (vector form):   " << total_area.ToString()
            << "\n";
  std::cout << "total county area (via clipping):  "
            << clipped_area.ToString() << "  (exactly equal: "
            << (total_area == clipped_area ? "yes" : "NO") << ")\n\n";

  // --- Query 4: indexing advice -------------------------------------------
  std::vector<BoxQuery> workload;
  for (int i = 0; i < 12; ++i) {
    double qx = static_cast<double>(rng.UniformInt(0, kGrid * kCell - 300));
    double qy = static_cast<double>(rng.UniformInt(0, kGrid * kCell - 300));
    workload.push_back(BoxQuery::Both(qx, qx + 300, qy, qy + 300));
  }
  auto advice = cqa::AdviseIndexing(
      counties, workload, "x", "y",
      Rect::Make2D(-500, kGrid * kCell + 500, -500, kGrid * kCell + 500));
  if (!advice.ok()) return Fail(advice.status());
  std::cout << "index advisor on Counties under a conjunctive workload:\n"
            << advice->ToString() << "\n";
  return EXIT_SUCCESS;
}
