// Joint vs separate multi-attribute indexing (§5 of the paper).
//
// Recreates the paper's §5.3 worked example on the full workload of §5.4:
// a selection `x < a AND y > b` where each attribute alone has ~50%
// selectivity but the conjunction selects almost nothing. A joint 2-D
// R*-tree answers it in a handful of page reads; two separate 1-D indexes
// must each scan half the relation and intersect.

#include <algorithm>
#include <cstdlib>
#include <vector>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

}  // namespace

int main() {
  std::cout << "CCDB: one joint index vs one index per attribute (§5)\n\n";

  // Data that realizes the paper's §5.3 scenario: rectangles hugging the
  // main diagonal (y ~ x), so "x small" matches half the data and
  // "y large" matches half the data, but their conjunction matches almost
  // nothing. Same counts/extents as the paper's recipe otherwise.
  std::vector<geom::Box> boxes;
  {
    Rng rng(2003);
    WorkloadParams params;
    for (size_t i = 0; i < params.data_count; ++i) {
      int64_t x = rng.UniformInt(0, 3000);
      int64_t y = std::clamp<int64_t>(x + rng.UniformInt(-150, 150), 0, 3000);
      int64_t w = rng.UniformInt(1, 100);
      int64_t h = rng.UniformInt(1, 100);
      boxes.push_back(geom::Box{Rational(x), Rational(x + w), Rational(y),
                                Rational(y + h)});
    }
  }
  Relation rel = BoxesToConstraintRelation(boxes);
  std::cout << "data: " << rel.size()
            << " constraint tuples (rectangles along the diagonal y ~ x)\n";

  PageManager disk;
  BufferPool pool(&disk, /*capacity=*/0);  // count every page touch
  const Rect domain = Rect::Make2D(-100, 3200, -100, 3200);

  auto joint = cqa::StoredRelation::Create(
      &pool, rel, cqa::AccessIndexKind::kJoint, "x", "y", domain);
  if (!joint.ok()) return Fail(joint.status());
  auto separate = cqa::StoredRelation::Create(
      &pool, rel, cqa::AccessIndexKind::kSeparate, "x", "y", domain);
  if (!separate.ok()) return Fail(separate.status());
  auto unindexed = cqa::StoredRelation::Create(
      &pool, rel, cqa::AccessIndexKind::kNone, "x", "y", domain);
  if (!unindexed.ok()) return Fail(unindexed.status());

  // §5.3: x < 1500 AND y > 1500 — each half selective alone; their
  // conjunction is the top-left quadrant only.
  BoxQuery query = BoxQuery::Both(-100, 1500, 1500, 3200);
  std::cout << "query: x <= 1500 AND y >= 1500 (conjunctively selective)\n\n";

  struct Row {
    const char* name;
    cqa::StoredRelation* stored;
  };
  Row rows[] = {{"joint 2-D R*-tree", joint->get()},
                {"two separate 1-D R*-trees", separate->get()},
                {"heap-file scan", unindexed->get()}};
  std::cout << "  access path                     disk reads   result tuples\n";
  for (Row& row : rows) {
    disk.ResetStats();
    auto result = row.stored->BoxSelect(query);
    if (!result.ok()) return Fail(result.status());
    printf("  %-30s  %10llu   %13zu\n", row.name,
           static_cast<unsigned long long>(disk.stats().reads),
           result->size());
  }

  std::cout << "\nSingle-attribute query (x only): the separate index wins "
               "mildly —\nthe joint index must widen y to the whole domain "
               "(§5.4, Fig. 5).\n\n";
  BoxQuery xonly = BoxQuery::XOnly(1000, 1100);
  std::cout << "  access path                     disk reads   result tuples\n";
  for (Row& row : rows) {
    disk.ResetStats();
    auto result = row.stored->BoxSelect(xonly);
    if (!result.ok()) return Fail(result.status());
    printf("  %-30s  %10llu   %13zu\n", row.name,
           static_cast<unsigned long long>(disk.stats().reads),
           result->size());
  }

  // Index-only accounting (the paper's metric): count pages the index
  // itself touches, excluding the heap fetches of qualifying records that
  // both strategies pay identically.
  std::cout << "\nIndex-only page reads for the conjunctive query (the "
               "paper's metric —\nthe separate strategy must enumerate "
               "every id matching EACH attribute\nbefore intersecting):\n\n";
  {
    PageManager index_disk;
    BufferPool index_pool(&index_disk, 0);
    JointIndex ji(&index_pool, domain);
    SeparateIndex si(&index_pool);
    for (uint64_t i = 0; i < boxes.size(); ++i) {
      Rect rect = Rect::Make2D(
          Rect::RoundDown(boxes[i].x_min), Rect::RoundUp(boxes[i].x_max),
          Rect::RoundDown(boxes[i].y_min), Rect::RoundUp(boxes[i].y_max));
      if (Status s = ji.Insert(rect, i); !s.ok()) return Fail(s);
      if (Status s = si.Insert(rect, i); !s.ok()) return Fail(s);
    }
    index_disk.ResetStats();
    auto jr = ji.Search(query);
    if (!jr.ok()) return Fail(jr.status());
    uint64_t joint_reads = index_disk.stats().reads;
    index_disk.ResetStats();
    auto sr = si.Search(query);
    if (!sr.ok()) return Fail(sr.status());
    uint64_t separate_reads = index_disk.stats().reads;
    printf("  joint 2-D R*-tree               %10llu  (%zu hits)\n",
           static_cast<unsigned long long>(joint_reads), jr->size());
    printf("  two separate 1-D R*-trees       %10llu  (%zu hits)\n",
           static_cast<unsigned long long>(separate_reads), sr->size());
  }

  std::cout << "\nSee bench/bench_fig4_two_attr and bench/bench_fig5_one_attr "
               "for the\nfull reproduction of the paper's Figures 4 and 5.\n";
  return EXIT_SUCCESS;
}
