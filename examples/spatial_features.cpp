// Vector vs constraint representation (§6 of the paper).
//
// Builds spatial features as vector geometry (the GIS-native form), shows
// the exact two-way conversion to constraint tuples — including convex
// decomposition of a concave region — and runs whole-feature operators
// over the result. Demonstrates the paper's point that the CDB middle
// layer is representation-neutral.

#include <cstdlib>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

}  // namespace

int main() {
  std::cout << "CCDB: representation-neutral spatial data (paper §6)\n\n";

  // 1. An L-shaped lake, digitized as a vector outline (concave!).
  auto lake = geom::Polygon::Make({geom::Point(0, 0), geom::Point(40, 0),
                                   geom::Point(40, 20), geom::Point(20, 20),
                                   geom::Point(20, 40), geom::Point(0, 40)});
  if (!lake.ok()) return Fail(lake.status());
  std::cout << "lake outline: " << lake->ToString() << "\n";
  std::cout << "  area (exact): " << lake->Area().ToString()
            << ", convex: " << (lake->IsConvex() ? "yes" : "no") << "\n\n";

  // 2. Constraint representation: the concave region must be decomposed
  //    into convex pieces, one constraint tuple each (§6.2). This is the
  //    redundancy the paper discusses — shared boundaries appear twice.
  auto pieces = geom::PolygonToConstraintTuples(*lake, "x", "y");
  std::cout << "constraint representation (" << pieces.size()
            << " convex pieces = " << pieces.size()
            << " constraint tuples):\n";
  for (const Conjunction& piece : pieces) {
    std::cout << "  (" << piece.ToString() << ")\n";
  }
  std::cout << "\n";

  // 3. A river as a polyline; each segment becomes the paper's
  //    three-constraint tuple (collinear line + endpoint bounds).
  geom::Polyline river({geom::Point(-10, 50), geom::Point(10, 30),
                        geom::Point(30, 28), geom::Point(60, 5)});
  auto river_tuples = geom::PolylineToConstraintTuples(river, "x", "y");
  std::cout << "river (" << river.NumSegments() << " segments -> "
            << river_tuples.size() << " constraint tuples):\n";
  for (const Conjunction& seg : river_tuples) {
    std::cout << "  (" << seg.ToString() << ")\n";
  }
  std::cout << "\n";

  // 4. Round-trip: each constraint tuple converts back to geometry
  //    exactly (vertex enumeration).
  auto back = geom::ConjunctionToRegion(pieces[0], "x", "y");
  if (!back.ok()) return Fail(back.status());
  std::cout << "first lake piece back as geometry: " << back->ToString()
            << "\n\n";

  // 5. Load both features into a spatial constraint relation and run the
  //    §4 whole-feature operators.
  Schema spatial = Schema::Make({Schema::RelationalString("fid"),
                                 Schema::ConstraintRational("x"),
                                 Schema::ConstraintRational("y")})
                       .value();
  Relation features(spatial);
  auto add = [&](const std::string& fid, const Conjunction& c) {
    Tuple t;
    t.SetValue("fid", Value::String(fid));
    t.SetConstraints(c);
    return features.Insert(std::move(t));
  };
  for (const Conjunction& piece : pieces) {
    if (Status s = add("lake", piece); !s.ok()) return Fail(s);
  }
  for (const Conjunction& seg : river_tuples) {
    if (Status s = add("river", seg); !s.ok()) return Fail(s);
  }
  // A couple of towns as boxes.
  auto town = [&](const std::string& name, int64_t x, int64_t y) {
    Conjunction c = geom::ConvexRingToConjunction(
        geom::Polygon::Rectangle(
            geom::Box::FromCorners(geom::Point(x, y),
                                   geom::Point(x + 8, y + 8)))
            .vertices(),
        "x", "y");
    return add(name, c);
  };
  if (Status s = town("easton", 50, 0); !s.ok()) return Fail(s);
  if (Status s = town("weston", 46, 44); !s.ok()) return Fail(s);

  auto set = cqa::FeatureSet::FromRelation(features);
  if (!set.ok()) return Fail(set.status());
  std::cout << "feature set: " << set->size() << " features\n";

  cqa::SpatialOptions opts;
  opts.exclude_same_id = true;
  auto near = cqa::BufferJoin(*set, *set, Rational(10), opts);
  if (!near.ok()) return Fail(near.status());
  std::cout << "\nbuffer-join within 10 (feature pairs):\n"
            << near->ToString() << "\n";

  auto nearest = cqa::KNearest(*set, *set, 1, opts);
  if (!nearest.ok()) return Fail(nearest.status());
  std::cout << "\nnearest neighbor of each feature:\n"
            << nearest->ToString() << "\n";

  // 6. §6's closing example: projection straight off the vector form.
  geom::Box bb = lake->BoundingBox();
  std::cout << "\nprojection of the lake onto x straight from the vector "
               "form: ["
            << bb.x_min.ToString() << ", " << bb.x_max.ToString() << "]\n";
  return EXIT_SUCCESS;
}
