// The Hurricane case study (§3.3 of the paper), end to end.
//
// Loads the heterogeneous Hurricane database from its .cdb data file and
// runs the case study's queries in the step-based ASCII CQA language —
// exactly the workflow the paper demonstrates, including the two
// whole-feature operators of §4.
//
// Usage: hurricane [path-to-hurricane.cdb]

#include <cstdlib>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

void RunQuery(Database* db, const std::string& title,
              const std::string& script) {
  std::cout << "=== " << title << "\n" << script;
  auto result = lang::RunQuery(script, db);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n\n";
    return;
  }
  std::cout << "result:\n" << result->ToString() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : std::string(CCDB_DATA_DIR) +
                                              "/hurricane/hurricane.cdb";
  Database db;
  if (Status s = lang::LoadDatabaseFile(path, &db); !s.ok()) return Fail(s);

  std::cout << "Loaded Hurricane database from " << path << "\n";
  for (const std::string& name : db.Names()) {
    std::cout << "  " << name << ": " << db.Get(name).value()->size()
              << " tuples, schema "
              << db.Get(name).value()->schema().ToString() << "\n";
  }
  std::cout << "\n";

  RunQuery(&db, "Query 1: who owned Land A, and when",
           "R0 = select landId = A from Landownership\n"
           "R1 = project R0 on name, t\n");

  RunQuery(&db, "Query 2: all land parcels the hurricane passed",
           "R0 = join Hurricane and Land\n"
           "R1 = project R0 on landId\n");

  RunQuery(&db,
           "Query 3: names of those whose land was hit by the hurricane "
           "between time 4 and 9",
           "R0 = join Landownership and Land\n"
           "R1 = select t >= 4, t <= 9 from Hurricane\n"
           "R2 = join R0 and R1\n"
           "R3 = project R2 on name\n");

  RunQuery(&db, "Query 4: where was the hurricane at time 6",
           "R0 = select t = 6 from Hurricane\n"
           "R1 = project R0 on x, y\n");

  RunQuery(&db,
           "Query 5 (whole-feature, §4): parcels within distance 1/2 of "
           "the hurricane trajectory",
           "R0 = buffer-join LandFeatures and HurricanePath within 1/2\n");

  RunQuery(&db,
           "Query 6 (whole-feature, §4): the 2 parcels nearest the "
           "trajectory",
           "R0 = k-nearest HurricanePath and LandFeatures k 2\n");

  std::cout << "Note (§4): a raw distance *value* is not representable with "
               "linear\nconstraints (its boundary is circular), so queries "
               "returning distances are\nunsafe; Buffer-Join and k-Nearest "
               "return feature-ID relations instead,\nwhich keeps every "
               "query closed under the algebra.\n";
  return EXIT_SUCCESS;
}
