// Quickstart: the CCDB public API in one file.
//
// Builds a small heterogeneous constraint database in memory, runs every
// CQA operator on it, and prints the results. Start here; then see
// hurricane.cpp for the paper's full case study.

#include <cstdlib>
#include <iostream>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

LinearExpr Var(const std::string& name) { return LinearExpr::Variable(name); }
LinearExpr Num(int64_t v) { return LinearExpr::Constant(Rational(v)); }

void Show(const std::string& title, const Relation& rel) {
  std::cout << "-- " << title << "\n" << rel.ToString() << "\n\n";
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return EXIT_FAILURE;
}

}  // namespace

int main() {
  std::cout << "CCDB quickstart: a heterogeneous constraint database\n\n";

  // 1. A schema with the paper's C/R flag: `city` is a traditional
  //    (relational) attribute; `temp` and `hour` are constraint attributes
  //    holding *infinite* sets of points, finitely represented.
  Schema schema = Schema::Make({
                      Schema::RelationalString("city"),
                      Schema::ConstraintRational("hour"),
                      Schema::ConstraintRational("temp"),
                  })
                      .value();

  // 2. Tuples mix concrete values with linear constraints. This one says:
  //    in Storrs, from hour 0 to 12, the temperature rises linearly
  //    temp = 10 + hour/2 — infinitely many (hour, temp) points in one tuple.
  Relation weather(schema);
  {
    Tuple t;
    t.SetValue("city", Value::String("Storrs"));
    t.AddConstraint(Constraint::Ge(Var("hour"), Num(0)));
    t.AddConstraint(Constraint::Le(Var("hour"), Num(12)));
    t.AddConstraint(Constraint::Eq(Var("temp") * Rational(2),
                                   Var("hour") + Num(20)));
    if (Status s = weather.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  {
    Tuple t;  // Hartford: constant 18 degrees all day.
    t.SetValue("city", Value::String("Hartford"));
    t.AddConstraint(Constraint::Ge(Var("hour"), Num(0)));
    t.AddConstraint(Constraint::Le(Var("hour"), Num(24)));
    t.AddConstraint(Constraint::Eq(Var("temp"), Num(18)));
    if (Status s = weather.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  Show("weather", weather);

  // 3. Select: when is it at least 14 degrees? The constraint temp >= 14 is
  //    conjoined into each tuple's store; unsatisfiable tuples vanish.
  Predicate warm;
  warm.linear.push_back(Constraint::Ge(Var("temp"), Num(14)));
  auto warm_times = cqa::Select(weather, warm);
  if (!warm_times.ok()) return Fail(warm_times.status());
  Show("select temp >= 14", *warm_times);

  // 4. Project: the hours at which each city is warm — projection
  //    existentially eliminates `temp` by Fourier-Motzkin.
  auto warm_hours = cqa::Project(*warm_times, {"city", "hour"});
  if (!warm_hours.ok()) return Fail(warm_hours.status());
  Show("project onto (city, hour)", *warm_hours);

  // 5. Join against a relational table of city population.
  Relation cities(Schema::Make({Schema::RelationalString("city"),
                                Schema::RelationalRational("pop")})
                      .value());
  for (auto [name, pop] : {std::pair{"Storrs", 16000},
                           std::pair{"Hartford", 121000}}) {
    Tuple t;
    t.SetValue("city", Value::String(name));
    t.SetValue("pop", Value::Number(pop));
    if (Status s = cities.Insert(std::move(t)); !s.ok()) return Fail(s);
  }
  auto joined = cqa::NaturalJoin(*warm_hours, cities);
  if (!joined.ok()) return Fail(joined.status());
  Show("join with city populations", *joined);

  // 6. Difference: hours that are warm in Hartford but not in Storrs.
  auto hartford = cqa::Project(
      cqa::Select(*warm_hours,
                  [] {
                    Predicate p;
                    p.strings.push_back(
                        StringAtom::EqualsLiteral("city", "Hartford"));
                    return p;
                  }())
          .value(),
      {"hour"});
  auto storrs = cqa::Project(
      cqa::Select(*warm_hours,
                  [] {
                    Predicate p;
                    p.strings.push_back(
                        StringAtom::EqualsLiteral("city", "Storrs"));
                    return p;
                  }())
          .value(),
      {"hour"});
  if (!hartford.ok() || !storrs.ok()) return Fail(hartford.status());
  auto diff = cqa::Difference(*hartford, *storrs);
  if (!diff.ok()) return Fail(diff.status());
  Show("hours warm in Hartford but not in Storrs", *diff);

  // 7. The same pipeline as an optimized logical plan.
  Database db;
  db.CreateOrReplace("weather", weather);
  db.CreateOrReplace("cities", cities);
  auto plan = cqa::PlanNode::Select(
      cqa::PlanNode::Join(cqa::PlanNode::Scan("weather"),
                          cqa::PlanNode::Scan("cities")),
      warm);
  std::cout << "-- logical plan before optimization\n"
            << plan->ToString() << "\n\n";
  auto optimized = cqa::Optimize(plan->Clone(), db);
  std::cout << "-- after select pushdown\n"
            << optimized->ToString() << "\n\n";
  auto result = cqa::Execute(*optimized, db);
  if (!result.ok()) return Fail(result.status());
  std::cout << "-- plan result has " << result->size() << " tuples\n";

  // 8. Exactness demo: query semantics are decided with exact rational
  //    arithmetic — no epsilons anywhere.
  PointRow noon{{{"city", Value::String("Storrs")}},
                {{"hour", Rational(8)}, {"temp", Rational(14)}}};
  std::cout << "\nStorrs at hour 8, temp 14 in `select temp >= 14`? "
            << (warm_times->ContainsPoint(noon) ? "yes" : "no")
            << " (boundary point, kept by exactness)\n";
  return EXIT_SUCCESS;
}
