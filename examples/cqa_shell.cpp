// An interactive CQA/CDB shell.
//
// Loads .cdb data files and evaluates the step-based ASCII query language
// interactively — the "user interface layer" slot of the paper's Figure 1.
//
// Usage:  cqa_shell [file.cdb ...]
// Commands:
//   <step> = <operator> ...     evaluate a CQA step (see `help`)
//   show <relation>             print a relation
//   schema <relation>           print a schema
//   list                        list relations
//   load <path>                 load a .cdb file
//   save <path>                 export the database as a .cdb file
//   plan <relation>             advisor: joint vs separate indexing hints
//   help                        syntax summary
//   quit

#include <iostream>
#include <sstream>
#include <string>

#include "ccdb.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::cout <<
      R"(CQA statements (each defines/overwrites a named step):
  R1 = select t >= 4, t <= 9, landId = A from R0
  R2 = project R1 on name, t
  R3 = join A and B            (natural join; also: product, intersect)
  R4 = union A and B
  R5 = minus A and B           (difference)
  R6 = rename x to t in R5
  R7 = buffer-join L and P within 5 [using fid]
  R8 = k-nearest L and P k 3 [using fid]
Shell commands: show/schema/list/load/save/plan/help/quit
)";
}

void ShowRelation(Database* db, const std::string& name) {
  auto rel = db->Get(name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  std::cout << (*rel)->ToString() << "\n";
}

void AdvisePlan(Database* db, const std::string& name) {
  auto rel = db->Get(name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  // A default conjunctive probe workload over the relation's extent.
  std::vector<BoxQuery> workload;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    double x = static_cast<double>(rng.UniformInt(0, 2900));
    double y = static_cast<double>(rng.UniformInt(0, 2900));
    workload.push_back(BoxQuery::Both(x, x + 100, y, y + 100));
  }
  auto report = cqa::AdviseIndexing(**rel, workload, "x", "y",
                                    Rect::Make2D(-10, 3110, -10, 3110));
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  std::cout << report->ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  for (int i = 1; i < argc; ++i) {
    Status s = lang::LoadDatabaseFile(argv[i], &db);
    if (!s.ok()) {
      std::cerr << "error loading " << argv[i] << ": " << s.ToString()
                << "\n";
      return 1;
    }
    std::cout << "loaded " << argv[i] << "\n";
  }
  std::cout << "CCDB shell — 'help' for syntax, 'quit' to exit.\n";

  std::string line;
  while (std::cout << "cqa> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || command[0] == '#') continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "list") {
      for (const std::string& name : db.Names()) {
        std::cout << "  " << name << " ("
                  << db.Get(name).value()->size() << " tuples)\n";
      }
      continue;
    }
    if (command == "show" || command == "schema" || command == "plan" ||
        command == "load" || command == "save") {
      std::string arg;
      words >> arg;
      if (arg.empty()) {
        std::cout << command << " needs an argument\n";
        continue;
      }
      if (command == "show") {
        ShowRelation(&db, arg);
      } else if (command == "schema") {
        auto rel = db.Get(arg);
        std::cout << (rel.ok() ? (*rel)->schema().ToString()
                               : rel.status().ToString())
                  << "\n";
      } else if (command == "plan") {
        AdvisePlan(&db, arg);
      } else if (command == "load") {
        Status s = lang::LoadDatabaseFile(arg, &db);
        std::cout << (s.ok() ? "ok" : s.ToString()) << "\n";
      } else {
        Status s = lang::SaveDatabaseFile(arg, db);
        std::cout << (s.ok() ? "saved" : s.ToString()) << "\n";
      }
      continue;
    }
    // Otherwise: a CQA statement.
    auto step = lang::ExecuteStatement(line, &db);
    if (!step.ok()) {
      std::cout << step.status().ToString() << "\n";
      continue;
    }
    ShowRelation(&db, *step);
  }
  return 0;
}
