// An interactive CQA/CDB shell.
//
// Loads .cdb data files and evaluates the step-based ASCII query language
// interactively — the "user interface layer" slot of the paper's Figure 1.
// Statements run through the concurrent `service::QueryService` (one shell
// = one session), so the shell exercises the same front door as programmatic
// clients and can report its metrics.
//
// Usage:  cqa_shell [file.cdb ...]
// Commands:
//   <step> = <operator> ...     evaluate a CQA step (see `help`)
//   show <relation>             print a relation
//   schema <relation>           print a schema
//   list                        list relations
//   load <path>                 load a .cdb file
//   save <path>                 export the database as a .cdb file
//   plan <relation>             advisor: joint vs separate indexing hints
//   \trace <script|file>        EXPLAIN ANALYZE: run with per-operator spans
//   \metrics                    query-service metrics snapshot
//   \checkpoint                 apply pending pages + truncate the WAL
//   help                        syntax summary
//   quit
//
// The shell's base catalog is backed by a `DurableStore`: every load and
// catalog write is journaled to a write-ahead log on the simulated disk
// before it is acknowledged, and `\checkpoint` truncates the log once its
// batches are applied.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ccdb.h"
#include "util/string_util.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::cout <<
      R"(CQA statements (each defines/overwrites a named step):
  R1 = select t >= 4, t <= 9, landId = A from R0
  R2 = project R1 on name, t
  R3 = join A and B            (natural join; also: product, intersect)
  R4 = union A and B
  R5 = minus A and B           (difference)
  R6 = rename x to t in R5
  R7 = buffer-join L and P within 5 [using fid]
  R8 = k-nearest L and P k 3 [using fid]
Shell commands: show/schema/list/load/save/plan/\trace/\metrics/\checkpoint/
                help/quit
  \trace <statement>   run one statement with per-operator spans
  \trace <file>        run a multi-step script file the same way
)";
}

void ShowRelation(service::QueryService* service, service::SessionId session,
                  const std::string& name) {
  auto rel = service->GetRelation(session, name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  std::cout << rel->ToString() << "\n";
}

void AdvisePlan(service::QueryService* service, service::SessionId session,
                const std::string& name) {
  auto rel = service->GetRelation(session, name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  // A default conjunctive probe workload over the relation's extent.
  std::vector<BoxQuery> workload;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    double x = static_cast<double>(rng.UniformInt(0, 2900));
    double y = static_cast<double>(rng.UniformInt(0, 2900));
    workload.push_back(BoxQuery::Both(x, x + 100, y, y + 100));
  }
  auto report = cqa::AdviseIndexing(*rel, workload, "x", "y",
                                    Rect::Make2D(-10, 3110, -10, 3110));
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  std::cout << report->ToString() << "\n";
}

/// `\trace`: executes a statement (or a script file, when the argument
/// names a readable one) with full tracing and renders the EXPLAIN
/// ANALYZE view — optimized plan, per-operator span tree, and totals.
void TraceScript(service::QueryService* service, service::SessionId session,
                 const std::string& arg) {
  std::string script = arg;
  if (std::ifstream file(arg); file.good()) {
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
  }
  auto report = service->Trace(session, script);
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  if (report->used_plan) {
    std::cout << "plan (optimized):\n" << report->plan_text << "\n";
  } else {
    std::cout << "(not compilable to one plan; statement-level spans)\n";
  }
  std::cout << "trace:\n" << report->root.ToString() << "\n";
  std::cout << "total: " << report->response.latency_us / 1000.0 << " ms, "
            << report->response.relation.size() << " tuples | "
            << report->root.TotalCounters().ToString() << "\n";
}

/// Loads a .cdb file and installs its relations through the service (so
/// versions bump and dependent cache entries invalidate).
void LoadInto(service::QueryService* service, const std::string& path) {
  Database staged;
  Status s = lang::LoadDatabaseFile(path, &staged);
  if (!s.ok()) {
    std::cout << s.ToString() << "\n";
    return;
  }
  for (const std::string& name : staged.Names()) {
    Status replaced = service->ReplaceRelation(name, **staged.Get(name));
    if (!replaced.ok()) {
      std::cout << name << ": " << replaced.ToString() << "\n";
      return;
    }
  }
  std::cout << "ok\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  for (int i = 1; i < argc; ++i) {
    Status s = lang::LoadDatabaseFile(argv[i], &db);
    if (!s.ok()) {
      std::cerr << "error loading " << argv[i] << ": " << s.ToString()
                << "\n";
      return 1;
    }
    std::cout << "loaded " << argv[i] << "\n";
  }

  // Durable storage stack: base catalog writes are journaled through a
  // WAL on the simulated disk before they are acknowledged.
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::cerr << "error creating durable store: " << store.status().ToString()
              << "\n";
    return 1;
  }
  if (!db.Names().empty()) {
    Status committed = (*store)->CommitCatalog(db);
    if (!committed.ok()) {
      std::cerr << "error persisting initial catalog: "
                << committed.ToString() << "\n";
      return 1;
    }
  }

  service::ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 128;
  options.disk = &disk;
  options.store = store->get();
  service::QueryService service(&db, options);
  const service::SessionId session = service.OpenSession();

  std::cout << "CCDB shell — 'help' for syntax, 'quit' to exit.\n";

  std::string line;
  while (std::cout << "cqa> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || command[0] == '#') continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "\\trace") {
      std::string rest;
      std::getline(words, rest);
      rest = Trim(rest);
      if (rest.empty()) {
        std::cout << "\\trace needs a statement or script file\n";
        continue;
      }
      TraceScript(&service, session, rest);
      continue;
    }
    if (command == "\\metrics" || command == "metrics") {
      std::cout << service.Metrics().ToString() << "\n";
      continue;
    }
    if (command == "\\checkpoint" || command == "checkpoint") {
      Status s = service.Checkpoint();
      std::cout << (s.ok() ? "checkpointed" : s.ToString()) << "\n";
      continue;
    }
    if (command == "list") {
      for (const std::string& name : service.VisibleNames(session)) {
        auto rel = service.GetRelation(session, name);
        std::cout << "  " << name << " ("
                  << (rel.ok() ? rel->size() : 0) << " tuples)\n";
      }
      continue;
    }
    if (command == "show" || command == "schema" || command == "plan" ||
        command == "load" || command == "save") {
      std::string arg;
      words >> arg;
      if (arg.empty()) {
        std::cout << command << " needs an argument\n";
        continue;
      }
      if (command == "show") {
        ShowRelation(&service, session, arg);
      } else if (command == "schema") {
        auto rel = service.GetRelation(session, arg);
        std::cout << (rel.ok() ? rel->schema().ToString()
                               : rel.status().ToString())
                  << "\n";
      } else if (command == "plan") {
        AdvisePlan(&service, session, arg);
      } else if (command == "load") {
        LoadInto(&service, arg);
      } else {
        Database snapshot = service.CloneBase();
        Status s = lang::SaveDatabaseFile(arg, snapshot);
        std::cout << (s.ok() ? "saved" : s.ToString()) << "\n";
      }
      continue;
    }
    // Otherwise: a CQA statement, executed by the service.
    auto response = service.Execute(session, line);
    if (!response.ok()) {
      std::cout << response.status().ToString() << "\n";
      continue;
    }
    if (response->cache_hit) std::cout << "(cached)\n";
    std::cout << response->relation.ToString() << "\n";
  }
  return 0;
}
