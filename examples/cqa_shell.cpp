// An interactive CQA/CDB shell.
//
// Loads .cdb data files and evaluates the step-based ASCII query language
// interactively — the "user interface layer" slot of the paper's Figure 1.
// Statements run through the concurrent `service::QueryService` (one shell
// = one session), so the shell exercises the same front door as programmatic
// clients and can report its metrics.
//
// Usage:  cqa_shell [file.cdb ...]
// Commands:
//   <step> = <operator> ...     evaluate a CQA step (see `help`)
//   show <relation>             print a relation
//   schema <relation>           print a schema
//   list                        list relations
//   load <path>                 load a .cdb file
//   save <path>                 export the database as a .cdb file
//   plan <relation>             advisor: joint vs separate indexing hints
//   BEGIN / COMMIT / ROLLBACK   multi-statement catalog transaction
//   \txn                        show the open transaction's state
//   \trace <script|file>        EXPLAIN ANALYZE: run with per-operator spans
//   \metrics                    query-service metrics snapshot
//   \top [ticks] [ms]           live dashboard (qps, p50/p99, queue, lag)
//   \checkpoint                 apply pending pages + truncate the WAL
//   \deadline <ms>|off          wall-clock budget for subsequent statements
//   \submit <statement>         run a statement in the background (prints id)
//   \wait <id>                  block on a background query's result
//   \cancel <id>                cancel a queued or running query
//   \connect <host:port>        route statements and commands to a ccdb_serve
//   \disconnect                 back to the in-process service
//   \promote                    fail over: connected replica becomes leader
//   \retry on|off               reconnecting idempotent retry for statements
//   help                        syntax summary
//   quit
//
// In connected mode (`\connect`) every statement and command — show,
// schema, list, load, save, plan, \trace, \metrics, \submit, \wait,
// \cancel, \checkpoint — travels over the binary wire protocol through
// `net::Client`; server-side failures (including governance shedding with
// its retry-after hint) print exactly as local ones do.
//
// The shell's base catalog is backed by a `DurableStore`: every load and
// catalog write is journaled to a write-ahead log on the simulated disk
// before it is acknowledged, and `\checkpoint` truncates the log once its
// batches are applied.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "ccdb.h"
#include "util/string_util.h"

using namespace ccdb;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::cout <<
      R"(CQA statements (each defines/overwrites a named step):
  R1 = select t >= 4, t <= 9, landId = A from R0
  R2 = project R1 on name, t
  R3 = join A and B            (natural join; also: product, intersect)
  R4 = union A and B
  R5 = minus A and B           (difference)
  R6 = rename x to t in R5
  R7 = buffer-join L and P within 5 [using fid]
  R8 = k-nearest L and P k 3 [using fid]
Shell commands: show/schema/list/load/save/plan/\txn/\trace/\metrics/\top/
                \checkpoint/\deadline/\submit/\wait/\cancel/help/quit
  BEGIN / COMMIT / ROLLBACK  stage loads as one atomic catalog commit
  \txn                 show the open transaction (id, epoch, staged writes)
  \trace <statement>   run one statement with per-operator spans
  \trace <file>        run a multi-step script file the same way
  \top [ticks] [ms]    live dashboard, default 5 ticks every 1000 ms
  \deadline <ms>|off   set/clear a wall-clock budget for later statements
  \submit <statement>  run in the background; prints a query id
  \wait <id>           block on a background query's result
  \cancel <id>         cancel a queued or running query by id
  \connect host:port   route statements/commands to a ccdb_serve daemon
  \disconnect          back to the in-process service
  \promote             fail over: make the connected replica the leader
  \retry on|off        reconnect + idempotent-retry statements (failover)
)";
}

void ShowRelation(service::QueryService* service, service::SessionId session,
                  const std::string& name) {
  auto rel = service->GetRelation(session, name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  std::cout << rel->ToString() << "\n";
}

void AdviseRelation(const Relation& rel) {
  // A default conjunctive probe workload over the relation's extent.
  std::vector<BoxQuery> workload;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    double x = static_cast<double>(rng.UniformInt(0, 2900));
    double y = static_cast<double>(rng.UniformInt(0, 2900));
    workload.push_back(BoxQuery::Both(x, x + 100, y, y + 100));
  }
  auto report = cqa::AdviseIndexing(rel, workload, "x", "y",
                                    Rect::Make2D(-10, 3110, -10, 3110));
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  std::cout << report->ToString() << "\n";
}

void AdvisePlan(service::QueryService* service, service::SessionId session,
                const std::string& name) {
  auto rel = service->GetRelation(session, name);
  if (!rel.ok()) {
    std::cout << rel.status().ToString() << "\n";
    return;
  }
  AdviseRelation(*rel);
}

/// A fresh nonzero trace id. Client-assigned: the same id stamps the
/// shell's output, the server's span tree, its slow-query log, and its
/// event log, so one grep correlates all four.
uint64_t NewTraceId() {
  static std::mt19937_64 rng{std::random_device{}()};
  uint64_t id = 0;
  while (id == 0) id = rng();
  return id;
}

/// `\trace`: executes a statement (or a script file, when the argument
/// names a readable one) with full tracing and renders the EXPLAIN
/// ANALYZE view — optimized plan, per-operator span tree, and totals.
void TraceScript(service::QueryService* service, service::SessionId session,
                 const std::string& arg) {
  std::string script = arg;
  if (std::ifstream file(arg); file.good()) {
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
  }
  auto report = service->Trace(session, script, NewTraceId());
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  if (report->used_plan) {
    std::cout << "plan (optimized):\n" << report->plan_text << "\n";
  } else {
    std::cout << "(not compilable to one plan; statement-level spans)\n";
  }
  std::cout << "trace (id " << report->trace_id << "):\n"
            << report->root.ToString() << "\n";
  std::cout << "total: " << report->response.latency_us / 1000.0 << " ms, "
            << report->response.relation.size() << " tuples | "
            << report->root.TotalCounters().ToString() << "\n";
}

/// Loads a .cdb file and installs its relations through the service (so
/// versions bump and dependent cache entries invalidate). Session-scoped:
/// inside BEGIN...COMMIT the load stages with the transaction.
void LoadInto(service::QueryService* service, service::SessionId session,
              const std::string& path) {
  Database staged;
  Status s = lang::LoadDatabaseFile(path, &staged);
  if (!s.ok()) {
    std::cout << s.ToString() << "\n";
    return;
  }
  for (const std::string& name : staged.Names()) {
    Status replaced =
        service->ReplaceRelation(session, name, **staged.Get(name));
    if (!replaced.ok()) {
      std::cout << name << ": " << replaced.ToString() << "\n";
      return;
    }
  }
  std::cout << "ok\n";
}

/// `\txn`: shows the session's transaction state (id, pinned snapshot
/// epoch, staged writes) or "no open transaction".
void ShowTxn(service::QueryService* service, service::SessionId session) {
  auto info = service->TransactionInfo(session);
  if (!info.ok()) {
    std::cout << info.status().ToString() << "\n";
    return;
  }
  if (!info->active) {
    std::cout << "no open transaction (catalog epoch "
              << service->CatalogEpoch() << ")\n";
    return;
  }
  std::cout << "txn " << info->txn_id << " open, snapshot epoch "
            << info->snapshot_epoch << ", " << info->staged_writes.size()
            << " staged write(s)";
  for (const std::string& name : info->staged_writes) {
    std::cout << "\n  " << name;
  }
  std::cout << "\n";
}

/// `\trace` against a connected server: the shell assigns the trace id,
/// FETCH_TRACE ships the full remote span *tree* back (not just its
/// pre-rendered text), and the rendering matches the local path — same
/// tree walk, same per-layer counter totals.
void TraceRemote(net::Client* remote, const std::string& arg) {
  std::string script = arg;
  if (std::ifstream file(arg); file.good()) {
    std::ostringstream buffer;
    buffer << file.rdbuf();
    script = buffer.str();
  }
  auto report = remote->FetchTrace(script, NewTraceId());
  if (!report.ok()) {
    std::cout << report.status().ToString() << "\n";
    return;
  }
  if (report->used_plan) {
    std::cout << "plan (optimized):\n" << report->plan_text << "\n";
  } else {
    std::cout << "(not compilable to one plan; statement-level spans)\n";
  }
  std::cout << "trace (id " << report->trace_id << "):\n"
            << report->root.ToString() << "\n";
  std::cout << "total: " << report->response.latency_us / 1000.0 << " ms, "
            << report->response.relation.size() << " tuples | "
            << report->root.TotalCounters().ToString() << "\n";
}

/// --- `\top`: a polling dashboard over the metrics snapshot surface ---

/// The histogram named `name`, or nullptr.
const obs::Histogram::Snapshot* FindHist(
    const obs::MetricsRegistry::Snapshot& snapshot, const std::string& name) {
  for (const obs::Histogram::Snapshot& hist : snapshot.histograms) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

/// Counter delta between two snapshots (0 when it went backwards, e.g.
/// across a server restart).
uint64_t DeltaValue(const obs::MetricsRegistry::Snapshot& cur,
                    const obs::MetricsRegistry::Snapshot& prev,
                    const std::string& name) {
  const uint64_t now = cur.Value(name);
  const uint64_t before = prev.Value(name);
  return now > before ? now - before : 0;
}

/// The interval-local histogram: bucket-wise difference of two cumulative
/// snapshots, so percentiles describe just the samples recorded between
/// the two polls.
obs::Histogram::Snapshot DeltaHist(const obs::Histogram::Snapshot* cur,
                                   const obs::Histogram::Snapshot* prev) {
  obs::Histogram::Snapshot delta;
  if (cur == nullptr) return delta;
  delta = *cur;
  if (prev == nullptr) return delta;
  delta.count -= std::min(prev->count, delta.count);
  delta.sum -= std::min(prev->sum, delta.sum);
  for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    delta.buckets[i] -= std::min(prev->buckets[i], delta.buckets[i]);
  }
  return delta;
}

/// `\top [iterations] [interval_ms]`: polls the snapshot source (the
/// in-process service or, over `\connect`, the remote server's merged
/// registry) and renders per-interval rates — client-side deltas, no
/// server-side state.
void TopDashboard(
    const std::function<Result<obs::MetricsRegistry::Snapshot>()>& poll,
    int iterations, int interval_ms) {
  Result<obs::MetricsRegistry::Snapshot> prev = poll();
  if (!prev.ok()) {
    std::cout << prev.status().ToString() << "\n";
    return;
  }
  std::cout << "\\top: " << iterations << " tick(s) every " << interval_ms
            << " ms\n";
  for (int tick = 1; tick <= iterations; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    Result<obs::MetricsRegistry::Snapshot> cur = poll();
    if (!cur.ok()) {
      std::cout << cur.status().ToString() << "\n";
      return;
    }
    const uint64_t completed =
        DeltaValue(*cur, *prev, obs::names::kQueriesCompleted);
    const double qps = completed * 1000.0 / interval_ms;
    const obs::Histogram::Snapshot latency = DeltaHist(
        FindHist(*cur, obs::names::kQueryLatencyUs),
        FindHist(*prev, obs::names::kQueryLatencyUs));
    const uint64_t hits = DeltaValue(*cur, *prev, obs::names::kCacheHits);
    const uint64_t misses = DeltaValue(*cur, *prev, obs::names::kCacheMisses);
    std::cout << "[" << tick << "/" << iterations << "] qps=" << qps;
    if (latency.count > 0) {
      std::cout << " p50<=" << latency.PercentileUpperBound(0.50) << "us"
                << " p99<=" << latency.PercentileUpperBound(0.99) << "us";
    } else {
      std::cout << " p50=- p99=-";
    }
    std::cout << " queue=" << cur->Value(obs::names::kQueueDepth);
    if (hits + misses > 0) {
      std::cout << " cache_hit=" << 100 * hits / (hits + misses) << "%";
    } else {
      std::cout << " cache_hit=-";
    }
    std::cout << " epoch=" << cur->Value(obs::names::kCatalogEpoch)
              << " wal_lsn=" << cur->Value(obs::names::kWalLsn) << "\n";
    if (cur->gauges.count(obs::names::kReplicaLagBatches) != 0) {
      std::cout << "      replica: lag_batches="
                << cur->Value(obs::names::kReplicaLagBatches)
                << " lag_bytes=" << cur->Value(obs::names::kReplicaLagBytes)
                << " applied_lsn="
                << cur->Value(obs::names::kReplicaLastApplyLsn)
                << " resyncs=" << cur->Value(obs::names::kReplicaResyncs)
                << "\n";
    }
    prev = std::move(cur);
  }
}

/// `load` against a connected server: parse locally, ship each relation.
void LoadRemote(net::Client* remote, const std::string& path) {
  Database staged;
  Status s = lang::LoadDatabaseFile(path, &staged);
  if (!s.ok()) {
    std::cout << s.ToString() << "\n";
    return;
  }
  for (const std::string& name : staged.Names()) {
    Status shipped = remote->LoadRelation(name, **staged.Get(name));
    if (!shipped.ok()) {
      std::cout << name << ": " << shipped.ToString() << "\n";
      return;
    }
  }
  std::cout << "ok\n";
}

/// `save` against a connected server: fetch every visible relation.
void SaveRemote(net::Client* remote, const std::string& path) {
  auto names = remote->ListRelations();
  if (!names.ok()) {
    std::cout << names.status().ToString() << "\n";
    return;
  }
  Database snapshot;
  for (const std::string& name : *names) {
    auto rel = remote->GetRelation(name);
    if (!rel.ok()) {
      std::cout << name << ": " << rel.status().ToString() << "\n";
      return;
    }
    snapshot.CreateOrReplace(name, std::move(*rel));
  }
  Status s = lang::SaveDatabaseFile(path, snapshot);
  std::cout << (s.ok() ? "saved" : s.ToString()) << "\n";
}

/// Parses "host:port"; empty host on failure.
std::pair<std::string, uint16_t> SplitHostPort(const std::string& arg) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) return {"", 0};
  const int port = std::atoi(arg.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return {"", 0};
  return {arg.substr(0, colon), static_cast<uint16_t>(port)};
}

/// Renders one finished query result (shared by Execute and `\wait`).
void PrintResponse(const Result<service::QueryResponse>& response) {
  if (!response.ok()) {
    std::cout << response.status().ToString() << "\n";
    return;
  }
  if (response->step == "BEGIN" || response->step == "COMMIT" ||
      response->step == "ROLLBACK") {
    // Transaction controls have no result relation worth printing.
    std::cout << (response->step == "BEGIN"      ? "transaction open"
                  : response->step == "COMMIT"   ? "committed"
                                                 : "rolled back")
              << "\n";
    return;
  }
  if (response->cache_hit) std::cout << "(cached)\n";
  if (response->truncated) std::cout << "(truncated: budget reached)\n";
  std::cout << response->relation.ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  for (int i = 1; i < argc; ++i) {
    Status s = lang::LoadDatabaseFile(argv[i], &db);
    if (!s.ok()) {
      std::cerr << "error loading " << argv[i] << ": " << s.ToString()
                << "\n";
      return 1;
    }
    std::cout << "loaded " << argv[i] << "\n";
  }

  // Durable storage stack: base catalog writes are journaled through a
  // WAL on the simulated disk before they are acknowledged.
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::cerr << "error creating durable store: " << store.status().ToString()
              << "\n";
    return 1;
  }
  if (!db.Names().empty()) {
    Status committed = (*store)->CommitCatalog(db);
    if (!committed.ok()) {
      std::cerr << "error persisting initial catalog: "
                << committed.ToString() << "\n";
      return 1;
    }
  }

  service::ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 128;
  options.disk = &disk;
  options.store = store->get();
  service::QueryService service(&db, options);
  const service::SessionId session = service.OpenSession();

  std::cout << "CCDB shell — 'help' for syntax, 'quit' to exit.\n";

  // Interactive governance state: `\deadline` applies to every later
  // statement; `\submit` parks futures here until `\wait`.
  double deadline_ms = 0;
  std::map<uint64_t, std::future<Result<service::QueryResponse>>> pending;
  auto query_options = [&deadline_ms] {
    service::QueryOptions opts;
    if (deadline_ms > 0) opts.deadline_us = deadline_ms * 1000.0;
    return opts;
  };
  // Connected mode: when set, statements and commands route through the
  // wire protocol instead of the in-process service. With `\retry on`, a
  // parallel ResilientClient carries the *statements*, so a leader
  // restart or failover mid-session reconnects and retries idempotently
  // instead of surfacing a transport error.
  std::unique_ptr<net::Client> remote;
  std::unique_ptr<net::ResilientClient> resilient;
  std::string remote_host;
  uint16_t remote_port = 0;

  std::string line;
  while (std::cout << "cqa> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || command[0] == '#') continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
      continue;
    }
    if (command == "\\connect") {
      std::string arg;
      words >> arg;
      auto [host, port] = SplitHostPort(arg);
      if (host.empty()) {
        std::cout << "\\connect needs host:port\n";
        continue;
      }
      net::ClientOptions copts;
      copts.client_name = "cqa_shell";
      auto client = net::Client::Connect(host, port, copts);
      if (!client.ok()) {
        std::cout << client.status().ToString() << "\n";
        continue;
      }
      remote = std::move(*client);
      remote_host = host;
      remote_port = port;
      resilient.reset();  // re-arm \retry against the new target if asked
      std::cout << "connected to " << remote->server_name() << " at " << arg
                << (remote->server_read_only() ? " (read-only replica)" : "")
                << " (term " << remote->server_term() << ")\n";
      continue;
    }
    if (command == "\\disconnect") {
      if (remote == nullptr) {
        std::cout << "not connected\n";
        continue;
      }
      remote.reset();
      resilient.reset();
      std::cout << "local mode\n";
      continue;
    }
    if (command == "\\promote") {
      if (remote == nullptr) {
        std::cout << "\\promote needs a connection (\\connect first)\n";
        continue;
      }
      auto term = remote->Promote();
      if (!term.ok()) {
        std::cout << term.status().ToString() << "\n";
      } else {
        std::cout << "promoted: serving writes under term " << *term << "\n";
      }
      continue;
    }
    if (command == "\\retry") {
      std::string arg;
      words >> arg;
      if (arg == "off") {
        resilient.reset();
        std::cout << "retry off\n";
      } else if (arg == "on") {
        if (remote == nullptr) {
          std::cout << "\\retry needs a connection (\\connect first)\n";
          continue;
        }
        net::ResilientClientOptions ropts;
        ropts.client_name = "cqa_shell-retry";
        ropts.seed = NewTraceId();  // distinct request-id stream per shell
        auto rc = net::ResilientClient::Connect(remote_host, remote_port,
                                                ropts);
        if (!rc.ok()) {
          std::cout << rc.status().ToString() << "\n";
          continue;
        }
        resilient = std::move(*rc);
        std::cout << "retry on: statements reconnect and retry "
                     "idempotently\n";
      } else {
        std::cout << "\\retry needs 'on' or 'off'\n";
      }
      continue;
    }
    if (command == "\\trace") {
      std::string rest;
      std::getline(words, rest);
      rest = Trim(rest);
      if (rest.empty()) {
        std::cout << "\\trace needs a statement or script file\n";
        continue;
      }
      if (remote != nullptr) {
        TraceRemote(remote.get(), rest);
      } else {
        TraceScript(&service, session, rest);
      }
      continue;
    }
    if (command == "\\deadline") {
      std::string arg;
      words >> arg;
      if (arg == "off") {
        deadline_ms = 0;
        std::cout << "deadline cleared\n";
      } else if (double ms = std::atof(arg.c_str()); ms > 0) {
        deadline_ms = ms;
        std::cout << "deadline " << ms << " ms\n";
      } else {
        std::cout << "\\deadline needs <ms> or 'off'\n";
      }
      continue;
    }
    if (command == "\\submit") {
      std::string rest;
      std::getline(words, rest);
      rest = Trim(rest);
      if (rest.empty()) {
        std::cout << "\\submit needs a statement\n";
        continue;
      }
      if (remote != nullptr) {
        auto id = remote->Submit(rest, query_options());
        if (!id.ok()) {
          std::cout << id.status().ToString() << "\n";
        } else {
          std::cout << "query " << *id
                    << " submitted (\\wait or \\cancel by id)\n";
        }
        continue;
      }
      auto submitted = service.Submit(session, rest, query_options());
      if (!submitted.ok()) {
        std::cout << submitted.status().ToString() << "\n";
        continue;
      }
      pending[submitted->query_id] = std::move(submitted->future);
      std::cout << "query " << submitted->query_id
                << " submitted (\\wait or \\cancel by id)\n";
      continue;
    }
    if (command == "\\wait" || command == "\\cancel") {
      std::string arg;
      words >> arg;
      const uint64_t id = std::strtoull(arg.c_str(), nullptr, 10);
      if (id == 0) {
        std::cout << command << " needs a query id\n";
        continue;
      }
      if (remote != nullptr) {
        if (command == "\\cancel") {
          Status s = remote->Cancel(id);
          std::cout << (s.ok() ? "cancel requested" : s.ToString()) << "\n";
        } else {
          PrintResponse(remote->Wait(id));
        }
        continue;
      }
      if (command == "\\cancel") {
        Status s = service.Cancel(session, id);
        std::cout << (s.ok() ? "cancel requested" : s.ToString()) << "\n";
        continue;
      }
      auto it = pending.find(id);
      if (it == pending.end()) {
        std::cout << "no pending query " << id << "\n";
        continue;
      }
      PrintResponse(it->second.get());
      pending.erase(it);
      continue;
    }
    if (command == "\\txn") {
      if (remote != nullptr) {
        // The server keeps the transaction with the connection's session;
        // state travels as ordinary statements, so just say how to use it.
        std::cout << "connected mode: BEGIN / COMMIT / ROLLBACK run "
                     "server-side on this connection's session\n";
      } else {
        ShowTxn(&service, session);
      }
      continue;
    }
    if (command == "\\top") {
      int iterations = 5;
      int interval_ms = 1000;
      if (std::string arg; words >> arg) {
        iterations = std::max(1, std::atoi(arg.c_str()));
      }
      if (std::string arg; words >> arg) {
        interval_ms = std::max(10, std::atoi(arg.c_str()));
      }
      auto poll = [&]() -> Result<obs::MetricsRegistry::Snapshot> {
        if (remote != nullptr) return remote->MetricsSnapshot();
        return service.MetricsSnapshot();
      };
      TopDashboard(poll, iterations, interval_ms);
      continue;
    }
    if (command == "\\metrics" || command == "metrics") {
      if (remote != nullptr) {
        auto text = remote->MetricsText();
        std::cout << (text.ok() ? *text : text.status().ToString()) << "\n";
      } else {
        std::cout << service.Metrics().ToString() << "\n";
      }
      continue;
    }
    if (command == "\\checkpoint" || command == "checkpoint") {
      Status s = remote != nullptr ? remote->Checkpoint()
                                   : service.Checkpoint();
      std::cout << (s.ok() ? "checkpointed" : s.ToString()) << "\n";
      continue;
    }
    if (command == "list") {
      if (remote != nullptr) {
        auto names = remote->ListRelations();
        if (!names.ok()) {
          std::cout << names.status().ToString() << "\n";
          continue;
        }
        for (const std::string& name : *names) std::cout << "  " << name
                                                         << "\n";
        continue;
      }
      for (const std::string& name : service.VisibleNames(session)) {
        auto rel = service.GetRelation(session, name);
        std::cout << "  " << name << " ("
                  << (rel.ok() ? rel->size() : 0) << " tuples)\n";
      }
      continue;
    }
    if (command == "show" || command == "schema" || command == "plan" ||
        command == "load" || command == "save") {
      std::string arg;
      words >> arg;
      if (arg.empty()) {
        std::cout << command << " needs an argument\n";
        continue;
      }
      if (remote != nullptr) {
        if (command == "show") {
          auto rel = remote->GetRelation(arg);
          std::cout << (rel.ok() ? rel->ToString() : rel.status().ToString())
                    << "\n";
        } else if (command == "schema") {
          auto rel = remote->GetRelation(arg);
          std::cout << (rel.ok() ? rel->schema().ToString()
                                 : rel.status().ToString())
                    << "\n";
        } else if (command == "plan") {
          auto rel = remote->GetRelation(arg);
          if (!rel.ok()) {
            std::cout << rel.status().ToString() << "\n";
          } else {
            AdviseRelation(*rel);
          }
        } else if (command == "load") {
          LoadRemote(remote.get(), arg);
        } else {
          SaveRemote(remote.get(), arg);
        }
        continue;
      }
      if (command == "show") {
        ShowRelation(&service, session, arg);
      } else if (command == "schema") {
        auto rel = service.GetRelation(session, arg);
        std::cout << (rel.ok() ? rel->schema().ToString()
                               : rel.status().ToString())
                  << "\n";
      } else if (command == "plan") {
        AdvisePlan(&service, session, arg);
      } else if (command == "load") {
        LoadInto(&service, session, arg);
      } else {
        Database snapshot = service.CloneBase();
        Status s = lang::SaveDatabaseFile(arg, snapshot);
        std::cout << (s.ok() ? "saved" : s.ToString()) << "\n";
      }
      continue;
    }
    // Otherwise: a CQA statement, executed by the service (or the
    // connected server) under the shell's current \deadline (if any).
    if (resilient != nullptr) {
      PrintResponse(resilient->Execute(line, query_options()));
    } else if (remote != nullptr) {
      PrintResponse(remote->Execute(line, query_options()));
    } else {
      PrintResponse(service.Execute(session, line, query_options()));
    }
  }
  return 0;
}
