# Empty dependencies file for minkowski_test.
# This may be replaced when dependencies are built.
