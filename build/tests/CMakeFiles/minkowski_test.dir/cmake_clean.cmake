file(REMOVE_RECURSE
  "CMakeFiles/minkowski_test.dir/minkowski_test.cc.o"
  "CMakeFiles/minkowski_test.dir/minkowski_test.cc.o.d"
  "minkowski_test"
  "minkowski_test.pdb"
  "minkowski_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minkowski_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
