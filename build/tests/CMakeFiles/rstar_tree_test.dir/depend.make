# Empty dependencies file for rstar_tree_test.
# This may be replaced when dependencies are built.
