file(REMOVE_RECURSE
  "CMakeFiles/rstar_tree_test.dir/rstar_tree_test.cc.o"
  "CMakeFiles/rstar_tree_test.dir/rstar_tree_test.cc.o.d"
  "rstar_tree_test"
  "rstar_tree_test.pdb"
  "rstar_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstar_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
