file(REMOVE_RECURSE
  "CMakeFiles/calculus_test.dir/calculus_test.cc.o"
  "CMakeFiles/calculus_test.dir/calculus_test.cc.o.d"
  "calculus_test"
  "calculus_test.pdb"
  "calculus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
