# Empty dependencies file for calculus_test.
# This may be replaced when dependencies are built.
