file(REMOVE_RECURSE
  "CMakeFiles/plan_test.dir/plan_test.cc.o"
  "CMakeFiles/plan_test.dir/plan_test.cc.o.d"
  "plan_test"
  "plan_test.pdb"
  "plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
