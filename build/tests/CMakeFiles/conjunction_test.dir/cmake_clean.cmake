file(REMOVE_RECURSE
  "CMakeFiles/conjunction_test.dir/conjunction_test.cc.o"
  "CMakeFiles/conjunction_test.dir/conjunction_test.cc.o.d"
  "conjunction_test"
  "conjunction_test.pdb"
  "conjunction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjunction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
