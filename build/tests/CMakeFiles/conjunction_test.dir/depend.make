# Empty dependencies file for conjunction_test.
# This may be replaced when dependencies are built.
