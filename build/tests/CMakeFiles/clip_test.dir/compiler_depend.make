# Empty compiler generated dependencies file for clip_test.
# This may be replaced when dependencies are built.
