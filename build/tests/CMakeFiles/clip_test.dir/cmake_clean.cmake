file(REMOVE_RECURSE
  "CMakeFiles/clip_test.dir/clip_test.cc.o"
  "CMakeFiles/clip_test.dir/clip_test.cc.o.d"
  "clip_test"
  "clip_test.pdb"
  "clip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
