# Empty dependencies file for independence_test.
# This may be replaced when dependencies are built.
