file(REMOVE_RECURSE
  "CMakeFiles/independence_test.dir/independence_test.cc.o"
  "CMakeFiles/independence_test.dir/independence_test.cc.o.d"
  "independence_test"
  "independence_test.pdb"
  "independence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
