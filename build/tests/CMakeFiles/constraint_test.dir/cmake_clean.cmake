file(REMOVE_RECURSE
  "CMakeFiles/constraint_test.dir/constraint_test.cc.o"
  "CMakeFiles/constraint_test.dir/constraint_test.cc.o.d"
  "constraint_test"
  "constraint_test.pdb"
  "constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
