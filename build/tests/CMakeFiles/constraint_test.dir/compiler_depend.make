# Empty compiler generated dependencies file for constraint_test.
# This may be replaced when dependencies are built.
