file(REMOVE_RECURSE
  "CMakeFiles/linear_expr_test.dir/linear_expr_test.cc.o"
  "CMakeFiles/linear_expr_test.dir/linear_expr_test.cc.o.d"
  "linear_expr_test"
  "linear_expr_test.pdb"
  "linear_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
