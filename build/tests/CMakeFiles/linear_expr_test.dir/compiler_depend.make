# Empty compiler generated dependencies file for linear_expr_test.
# This may be replaced when dependencies are built.
