# Empty compiler generated dependencies file for geom_polygon_test.
# This may be replaced when dependencies are built.
