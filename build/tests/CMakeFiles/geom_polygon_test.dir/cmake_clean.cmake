file(REMOVE_RECURSE
  "CMakeFiles/geom_polygon_test.dir/geom_polygon_test.cc.o"
  "CMakeFiles/geom_polygon_test.dir/geom_polygon_test.cc.o.d"
  "geom_polygon_test"
  "geom_polygon_test.pdb"
  "geom_polygon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_polygon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
