file(REMOVE_RECURSE
  "CMakeFiles/spatial_test.dir/spatial_test.cc.o"
  "CMakeFiles/spatial_test.dir/spatial_test.cc.o.d"
  "spatial_test"
  "spatial_test.pdb"
  "spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
