file(REMOVE_RECURSE
  "CMakeFiles/geom_basic_test.dir/geom_basic_test.cc.o"
  "CMakeFiles/geom_basic_test.dir/geom_basic_test.cc.o.d"
  "geom_basic_test"
  "geom_basic_test.pdb"
  "geom_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
