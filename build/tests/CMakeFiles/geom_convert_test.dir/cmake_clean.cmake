file(REMOVE_RECURSE
  "CMakeFiles/geom_convert_test.dir/geom_convert_test.cc.o"
  "CMakeFiles/geom_convert_test.dir/geom_convert_test.cc.o.d"
  "geom_convert_test"
  "geom_convert_test.pdb"
  "geom_convert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
