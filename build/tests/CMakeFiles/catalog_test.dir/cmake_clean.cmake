file(REMOVE_RECURSE
  "CMakeFiles/catalog_test.dir/catalog_test.cc.o"
  "CMakeFiles/catalog_test.dir/catalog_test.cc.o.d"
  "catalog_test"
  "catalog_test.pdb"
  "catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
