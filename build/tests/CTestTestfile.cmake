# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/rational_test[1]_include.cmake")
include("/root/repo/build/tests/linear_expr_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/conjunction_test[1]_include.cmake")
include("/root/repo/build/tests/fourier_motzkin_test[1]_include.cmake")
include("/root/repo/build/tests/geom_basic_test[1]_include.cmake")
include("/root/repo/build/tests/geom_polygon_test[1]_include.cmake")
include("/root/repo/build/tests/geom_convert_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/rstar_tree_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/access_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/independence_test[1]_include.cmake")
include("/root/repo/build/tests/minkowski_test[1]_include.cmake")
include("/root/repo/build/tests/clip_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/calculus_test[1]_include.cmake")
