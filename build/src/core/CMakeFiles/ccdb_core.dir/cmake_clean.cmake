file(REMOVE_RECURSE
  "CMakeFiles/ccdb_core.dir/access.cc.o"
  "CMakeFiles/ccdb_core.dir/access.cc.o.d"
  "CMakeFiles/ccdb_core.dir/advisor.cc.o"
  "CMakeFiles/ccdb_core.dir/advisor.cc.o.d"
  "CMakeFiles/ccdb_core.dir/calculus.cc.o"
  "CMakeFiles/ccdb_core.dir/calculus.cc.o.d"
  "CMakeFiles/ccdb_core.dir/operators.cc.o"
  "CMakeFiles/ccdb_core.dir/operators.cc.o.d"
  "CMakeFiles/ccdb_core.dir/plan.cc.o"
  "CMakeFiles/ccdb_core.dir/plan.cc.o.d"
  "CMakeFiles/ccdb_core.dir/predicate.cc.o"
  "CMakeFiles/ccdb_core.dir/predicate.cc.o.d"
  "CMakeFiles/ccdb_core.dir/spatial.cc.o"
  "CMakeFiles/ccdb_core.dir/spatial.cc.o.d"
  "libccdb_core.a"
  "libccdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
