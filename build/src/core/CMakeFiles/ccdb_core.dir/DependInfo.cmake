
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access.cc" "src/core/CMakeFiles/ccdb_core.dir/access.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/access.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/ccdb_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/calculus.cc" "src/core/CMakeFiles/ccdb_core.dir/calculus.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/calculus.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/ccdb_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/operators.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/ccdb_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/plan.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/core/CMakeFiles/ccdb_core.dir/predicate.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/predicate.cc.o.d"
  "/root/repo/src/core/spatial.cc" "src/core/CMakeFiles/ccdb_core.dir/spatial.cc.o" "gcc" "src/core/CMakeFiles/ccdb_core.dir/spatial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/ccdb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ccdb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ccdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ccdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/ccdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/ccdb_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
