file(REMOVE_RECURSE
  "libccdb_core.a"
)
