# Empty dependencies file for ccdb_core.
# This may be replaced when dependencies are built.
