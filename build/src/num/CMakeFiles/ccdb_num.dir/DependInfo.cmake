
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/num/bigint.cc" "src/num/CMakeFiles/ccdb_num.dir/bigint.cc.o" "gcc" "src/num/CMakeFiles/ccdb_num.dir/bigint.cc.o.d"
  "/root/repo/src/num/rational.cc" "src/num/CMakeFiles/ccdb_num.dir/rational.cc.o" "gcc" "src/num/CMakeFiles/ccdb_num.dir/rational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
