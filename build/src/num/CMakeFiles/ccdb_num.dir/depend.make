# Empty dependencies file for ccdb_num.
# This may be replaced when dependencies are built.
