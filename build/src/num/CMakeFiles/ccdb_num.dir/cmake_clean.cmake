file(REMOVE_RECURSE
  "CMakeFiles/ccdb_num.dir/bigint.cc.o"
  "CMakeFiles/ccdb_num.dir/bigint.cc.o.d"
  "CMakeFiles/ccdb_num.dir/rational.cc.o"
  "CMakeFiles/ccdb_num.dir/rational.cc.o.d"
  "libccdb_num.a"
  "libccdb_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
