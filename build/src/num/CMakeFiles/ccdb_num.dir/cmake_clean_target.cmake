file(REMOVE_RECURSE
  "libccdb_num.a"
)
