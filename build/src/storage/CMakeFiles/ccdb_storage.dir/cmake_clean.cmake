file(REMOVE_RECURSE
  "CMakeFiles/ccdb_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ccdb_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ccdb_storage.dir/catalog.cc.o"
  "CMakeFiles/ccdb_storage.dir/catalog.cc.o.d"
  "CMakeFiles/ccdb_storage.dir/heap_file.cc.o"
  "CMakeFiles/ccdb_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/ccdb_storage.dir/pager.cc.o"
  "CMakeFiles/ccdb_storage.dir/pager.cc.o.d"
  "CMakeFiles/ccdb_storage.dir/serde.cc.o"
  "CMakeFiles/ccdb_storage.dir/serde.cc.o.d"
  "libccdb_storage.a"
  "libccdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
