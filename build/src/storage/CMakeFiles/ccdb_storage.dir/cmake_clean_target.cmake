file(REMOVE_RECURSE
  "libccdb_storage.a"
)
