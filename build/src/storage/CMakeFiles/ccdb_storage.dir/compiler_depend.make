# Empty compiler generated dependencies file for ccdb_storage.
# This may be replaced when dependencies are built.
