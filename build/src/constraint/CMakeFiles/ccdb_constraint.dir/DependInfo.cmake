
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/conjunction.cc" "src/constraint/CMakeFiles/ccdb_constraint.dir/conjunction.cc.o" "gcc" "src/constraint/CMakeFiles/ccdb_constraint.dir/conjunction.cc.o.d"
  "/root/repo/src/constraint/constraint.cc" "src/constraint/CMakeFiles/ccdb_constraint.dir/constraint.cc.o" "gcc" "src/constraint/CMakeFiles/ccdb_constraint.dir/constraint.cc.o.d"
  "/root/repo/src/constraint/fourier_motzkin.cc" "src/constraint/CMakeFiles/ccdb_constraint.dir/fourier_motzkin.cc.o" "gcc" "src/constraint/CMakeFiles/ccdb_constraint.dir/fourier_motzkin.cc.o.d"
  "/root/repo/src/constraint/independence.cc" "src/constraint/CMakeFiles/ccdb_constraint.dir/independence.cc.o" "gcc" "src/constraint/CMakeFiles/ccdb_constraint.dir/independence.cc.o.d"
  "/root/repo/src/constraint/linear_expr.cc" "src/constraint/CMakeFiles/ccdb_constraint.dir/linear_expr.cc.o" "gcc" "src/constraint/CMakeFiles/ccdb_constraint.dir/linear_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/num/CMakeFiles/ccdb_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
