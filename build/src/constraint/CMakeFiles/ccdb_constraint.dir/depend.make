# Empty dependencies file for ccdb_constraint.
# This may be replaced when dependencies are built.
