file(REMOVE_RECURSE
  "CMakeFiles/ccdb_constraint.dir/conjunction.cc.o"
  "CMakeFiles/ccdb_constraint.dir/conjunction.cc.o.d"
  "CMakeFiles/ccdb_constraint.dir/constraint.cc.o"
  "CMakeFiles/ccdb_constraint.dir/constraint.cc.o.d"
  "CMakeFiles/ccdb_constraint.dir/fourier_motzkin.cc.o"
  "CMakeFiles/ccdb_constraint.dir/fourier_motzkin.cc.o.d"
  "CMakeFiles/ccdb_constraint.dir/independence.cc.o"
  "CMakeFiles/ccdb_constraint.dir/independence.cc.o.d"
  "CMakeFiles/ccdb_constraint.dir/linear_expr.cc.o"
  "CMakeFiles/ccdb_constraint.dir/linear_expr.cc.o.d"
  "libccdb_constraint.a"
  "libccdb_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
