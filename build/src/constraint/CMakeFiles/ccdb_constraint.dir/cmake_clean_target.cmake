file(REMOVE_RECURSE
  "libccdb_constraint.a"
)
