
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cc" "src/geom/CMakeFiles/ccdb_geom.dir/box.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/box.cc.o.d"
  "/root/repo/src/geom/clip.cc" "src/geom/CMakeFiles/ccdb_geom.dir/clip.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/clip.cc.o.d"
  "/root/repo/src/geom/convert.cc" "src/geom/CMakeFiles/ccdb_geom.dir/convert.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/convert.cc.o.d"
  "/root/repo/src/geom/decompose.cc" "src/geom/CMakeFiles/ccdb_geom.dir/decompose.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/decompose.cc.o.d"
  "/root/repo/src/geom/minkowski.cc" "src/geom/CMakeFiles/ccdb_geom.dir/minkowski.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/minkowski.cc.o.d"
  "/root/repo/src/geom/point.cc" "src/geom/CMakeFiles/ccdb_geom.dir/point.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/point.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/ccdb_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/segment.cc" "src/geom/CMakeFiles/ccdb_geom.dir/segment.cc.o" "gcc" "src/geom/CMakeFiles/ccdb_geom.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraint/CMakeFiles/ccdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/ccdb_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
