file(REMOVE_RECURSE
  "libccdb_geom.a"
)
