# Empty compiler generated dependencies file for ccdb_geom.
# This may be replaced when dependencies are built.
