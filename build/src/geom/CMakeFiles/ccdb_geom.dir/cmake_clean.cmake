file(REMOVE_RECURSE
  "CMakeFiles/ccdb_geom.dir/box.cc.o"
  "CMakeFiles/ccdb_geom.dir/box.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/clip.cc.o"
  "CMakeFiles/ccdb_geom.dir/clip.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/convert.cc.o"
  "CMakeFiles/ccdb_geom.dir/convert.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/decompose.cc.o"
  "CMakeFiles/ccdb_geom.dir/decompose.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/minkowski.cc.o"
  "CMakeFiles/ccdb_geom.dir/minkowski.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/point.cc.o"
  "CMakeFiles/ccdb_geom.dir/point.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/polygon.cc.o"
  "CMakeFiles/ccdb_geom.dir/polygon.cc.o.d"
  "CMakeFiles/ccdb_geom.dir/segment.cc.o"
  "CMakeFiles/ccdb_geom.dir/segment.cc.o.d"
  "libccdb_geom.a"
  "libccdb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
