file(REMOVE_RECURSE
  "libccdb_lang.a"
)
