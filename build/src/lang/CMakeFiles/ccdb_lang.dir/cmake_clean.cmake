file(REMOVE_RECURSE
  "CMakeFiles/ccdb_lang.dir/data_parser.cc.o"
  "CMakeFiles/ccdb_lang.dir/data_parser.cc.o.d"
  "CMakeFiles/ccdb_lang.dir/expr_parser.cc.o"
  "CMakeFiles/ccdb_lang.dir/expr_parser.cc.o.d"
  "CMakeFiles/ccdb_lang.dir/lexer.cc.o"
  "CMakeFiles/ccdb_lang.dir/lexer.cc.o.d"
  "CMakeFiles/ccdb_lang.dir/query.cc.o"
  "CMakeFiles/ccdb_lang.dir/query.cc.o.d"
  "libccdb_lang.a"
  "libccdb_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
