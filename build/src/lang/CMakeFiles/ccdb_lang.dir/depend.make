# Empty dependencies file for ccdb_lang.
# This may be replaced when dependencies are built.
