
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/rstar_tree.cc" "src/index/CMakeFiles/ccdb_index.dir/rstar_tree.cc.o" "gcc" "src/index/CMakeFiles/ccdb_index.dir/rstar_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/ccdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/ccdb_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ccdb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ccdb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/ccdb_constraint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
