file(REMOVE_RECURSE
  "libccdb_index.a"
)
