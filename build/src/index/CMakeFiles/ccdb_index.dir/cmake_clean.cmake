file(REMOVE_RECURSE
  "CMakeFiles/ccdb_index.dir/rstar_tree.cc.o"
  "CMakeFiles/ccdb_index.dir/rstar_tree.cc.o.d"
  "libccdb_index.a"
  "libccdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
