# Empty dependencies file for ccdb_index.
# This may be replaced when dependencies are built.
