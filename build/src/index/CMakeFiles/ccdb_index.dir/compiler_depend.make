# Empty compiler generated dependencies file for ccdb_index.
# This may be replaced when dependencies are built.
