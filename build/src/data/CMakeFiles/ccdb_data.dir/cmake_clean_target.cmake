file(REMOVE_RECURSE
  "libccdb_data.a"
)
