file(REMOVE_RECURSE
  "CMakeFiles/ccdb_data.dir/database.cc.o"
  "CMakeFiles/ccdb_data.dir/database.cc.o.d"
  "CMakeFiles/ccdb_data.dir/relation.cc.o"
  "CMakeFiles/ccdb_data.dir/relation.cc.o.d"
  "CMakeFiles/ccdb_data.dir/schema.cc.o"
  "CMakeFiles/ccdb_data.dir/schema.cc.o.d"
  "CMakeFiles/ccdb_data.dir/tuple.cc.o"
  "CMakeFiles/ccdb_data.dir/tuple.cc.o.d"
  "CMakeFiles/ccdb_data.dir/value.cc.o"
  "CMakeFiles/ccdb_data.dir/value.cc.o.d"
  "CMakeFiles/ccdb_data.dir/workload.cc.o"
  "CMakeFiles/ccdb_data.dir/workload.cc.o.d"
  "libccdb_data.a"
  "libccdb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
