# Empty dependencies file for ccdb_data.
# This may be replaced when dependencies are built.
