
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/database.cc" "src/data/CMakeFiles/ccdb_data.dir/database.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/database.cc.o.d"
  "/root/repo/src/data/relation.cc" "src/data/CMakeFiles/ccdb_data.dir/relation.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/relation.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/ccdb_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/schema.cc.o.d"
  "/root/repo/src/data/tuple.cc" "src/data/CMakeFiles/ccdb_data.dir/tuple.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/tuple.cc.o.d"
  "/root/repo/src/data/value.cc" "src/data/CMakeFiles/ccdb_data.dir/value.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/value.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/data/CMakeFiles/ccdb_data.dir/workload.cc.o" "gcc" "src/data/CMakeFiles/ccdb_data.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraint/CMakeFiles/ccdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ccdb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/num/CMakeFiles/ccdb_num.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
