file(REMOVE_RECURSE
  "CMakeFiles/ccdb_util.dir/status.cc.o"
  "CMakeFiles/ccdb_util.dir/status.cc.o.d"
  "CMakeFiles/ccdb_util.dir/string_util.cc.o"
  "CMakeFiles/ccdb_util.dir/string_util.cc.o.d"
  "libccdb_util.a"
  "libccdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
