# Empty compiler generated dependencies file for ccdb_util.
# This may be replaced when dependencies are built.
