file(REMOVE_RECURSE
  "libccdb_util.a"
)
