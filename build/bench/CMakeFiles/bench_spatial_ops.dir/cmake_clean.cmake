file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_ops.dir/bench_spatial_ops.cpp.o"
  "CMakeFiles/bench_spatial_ops.dir/bench_spatial_ops.cpp.o.d"
  "bench_spatial_ops"
  "bench_spatial_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
