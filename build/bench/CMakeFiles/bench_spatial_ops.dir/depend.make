# Empty dependencies file for bench_spatial_ops.
# This may be replaced when dependencies are built.
