file(REMOVE_RECURSE
  "CMakeFiles/bench_rtree.dir/bench_rtree.cpp.o"
  "CMakeFiles/bench_rtree.dir/bench_rtree.cpp.o.d"
  "bench_rtree"
  "bench_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
