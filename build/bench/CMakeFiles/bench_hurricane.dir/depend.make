# Empty dependencies file for bench_hurricane.
# This may be replaced when dependencies are built.
