file(REMOVE_RECURSE
  "CMakeFiles/bench_hurricane.dir/bench_hurricane.cpp.o"
  "CMakeFiles/bench_hurricane.dir/bench_hurricane.cpp.o.d"
  "bench_hurricane"
  "bench_hurricane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hurricane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
