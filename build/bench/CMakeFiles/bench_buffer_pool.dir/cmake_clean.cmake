file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_pool.dir/bench_buffer_pool.cpp.o"
  "CMakeFiles/bench_buffer_pool.dir/bench_buffer_pool.cpp.o.d"
  "bench_buffer_pool"
  "bench_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
