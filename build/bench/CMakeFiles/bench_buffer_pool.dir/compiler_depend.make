# Empty compiler generated dependencies file for bench_buffer_pool.
# This may be replaced when dependencies are built.
