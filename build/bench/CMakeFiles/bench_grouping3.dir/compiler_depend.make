# Empty compiler generated dependencies file for bench_grouping3.
# This may be replaced when dependencies are built.
