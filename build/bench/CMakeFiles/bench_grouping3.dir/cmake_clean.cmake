file(REMOVE_RECURSE
  "CMakeFiles/bench_grouping3.dir/bench_grouping3.cpp.o"
  "CMakeFiles/bench_grouping3.dir/bench_grouping3.cpp.o.d"
  "bench_grouping3"
  "bench_grouping3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouping3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
