# Empty dependencies file for bench_fig5_one_attr.
# This may be replaced when dependencies are built.
