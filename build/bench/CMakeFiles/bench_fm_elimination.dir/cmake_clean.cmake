file(REMOVE_RECURSE
  "CMakeFiles/bench_fm_elimination.dir/bench_fm_elimination.cpp.o"
  "CMakeFiles/bench_fm_elimination.dir/bench_fm_elimination.cpp.o.d"
  "bench_fm_elimination"
  "bench_fm_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fm_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
