# Empty compiler generated dependencies file for bench_fm_elimination.
# This may be replaced when dependencies are built.
