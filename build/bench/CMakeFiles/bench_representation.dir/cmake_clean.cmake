file(REMOVE_RECURSE
  "CMakeFiles/bench_representation.dir/bench_representation.cpp.o"
  "CMakeFiles/bench_representation.dir/bench_representation.cpp.o.d"
  "bench_representation"
  "bench_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
