# Empty compiler generated dependencies file for bench_representation.
# This may be replaced when dependencies are built.
