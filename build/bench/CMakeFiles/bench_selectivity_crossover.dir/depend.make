# Empty dependencies file for bench_selectivity_crossover.
# This may be replaced when dependencies are built.
