file(REMOVE_RECURSE
  "CMakeFiles/bench_selectivity_crossover.dir/bench_selectivity_crossover.cpp.o"
  "CMakeFiles/bench_selectivity_crossover.dir/bench_selectivity_crossover.cpp.o.d"
  "bench_selectivity_crossover"
  "bench_selectivity_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selectivity_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
