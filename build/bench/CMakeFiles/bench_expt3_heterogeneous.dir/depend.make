# Empty dependencies file for bench_expt3_heterogeneous.
# This may be replaced when dependencies are built.
