# Empty compiler generated dependencies file for bench_fig4_two_attr.
# This may be replaced when dependencies are built.
