file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_two_attr.dir/bench_fig4_two_attr.cpp.o"
  "CMakeFiles/bench_fig4_two_attr.dir/bench_fig4_two_attr.cpp.o.d"
  "bench_fig4_two_attr"
  "bench_fig4_two_attr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_two_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
