file(REMOVE_RECURSE
  "CMakeFiles/indexing.dir/indexing.cpp.o"
  "CMakeFiles/indexing.dir/indexing.cpp.o.d"
  "indexing"
  "indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
