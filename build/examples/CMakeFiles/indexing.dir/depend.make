# Empty dependencies file for indexing.
# This may be replaced when dependencies are built.
