file(REMOVE_RECURSE
  "CMakeFiles/cqa_shell.dir/cqa_shell.cpp.o"
  "CMakeFiles/cqa_shell.dir/cqa_shell.cpp.o.d"
  "cqa_shell"
  "cqa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
