# Empty dependencies file for cqa_shell.
# This may be replaced when dependencies are built.
