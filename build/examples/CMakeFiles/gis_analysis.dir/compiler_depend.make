# Empty compiler generated dependencies file for gis_analysis.
# This may be replaced when dependencies are built.
