file(REMOVE_RECURSE
  "CMakeFiles/gis_analysis.dir/gis_analysis.cpp.o"
  "CMakeFiles/gis_analysis.dir/gis_analysis.cpp.o.d"
  "gis_analysis"
  "gis_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
