file(REMOVE_RECURSE
  "CMakeFiles/spatial_features.dir/spatial_features.cpp.o"
  "CMakeFiles/spatial_features.dir/spatial_features.cpp.o.d"
  "spatial_features"
  "spatial_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
