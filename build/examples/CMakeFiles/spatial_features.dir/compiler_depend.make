# Empty compiler generated dependencies file for spatial_features.
# This may be replaced when dependencies are built.
