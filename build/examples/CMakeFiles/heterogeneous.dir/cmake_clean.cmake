file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous.dir/heterogeneous.cpp.o"
  "CMakeFiles/heterogeneous.dir/heterogeneous.cpp.o.d"
  "heterogeneous"
  "heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
