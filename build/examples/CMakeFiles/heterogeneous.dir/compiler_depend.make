# Empty compiler generated dependencies file for heterogeneous.
# This may be replaced when dependencies are built.
