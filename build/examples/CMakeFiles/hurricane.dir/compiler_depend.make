# Empty compiler generated dependencies file for hurricane.
# This may be replaced when dependencies are built.
