file(REMOVE_RECURSE
  "CMakeFiles/hurricane.dir/hurricane.cpp.o"
  "CMakeFiles/hurricane.dir/hurricane.cpp.o.d"
  "hurricane"
  "hurricane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurricane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
