// Cost of the runtime lock-order deadlock detector (util/lock_graph.*).
//
// Two claims to pin down:
//   1. Detector OFF (the default build): zero cost by construction — the
//      hooks compile away and ccdb::Mutex is a bare std::mutex wrapper.
//      This binary, built without -DCCDB_DEADLOCK_DETECT=ON, measures
//      that baseline (detector_compiled=0 in the params); the ≤1% bar on
//      BENCH_service.json across the detector PR is the end-to-end proof.
//   2. Detector ON: the per-acquisition hook cost. Measured both with
//      the detector enabled (thread-local held-stack push/pop + per-edge
//      seen-cache lookup on nesting) and with the runtime toggle off
//      (lock_graph::SetEnabled(false): one relaxed atomic load per hook)
//      in the same binary, so the enabled-vs-disabled delta isolates the
//      bookkeeping from the toggle check.
//
// Scenarios, single-threaded tight loops (contention would swamp the
// hook cost with futex waits):
//   lock_unlock     one named mutex, lock+unlock — the leaf-lock path,
//                   no edges recorded after the first iteration;
//   nested_pair     outer→inner named pair — exercises the edge-record
//                   path (per-thread seen-cache hit after warmup);
//   anonymous       one unnamed mutex — held-set only, never the graph.
//
// With --json each result is one machine-readable line (bench_common.h),
// recorded as BENCH_lockgraph.json from the detector-ON build.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "util/lock_graph.h"
#include "util/mutex.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_lockgraph";
constexpr int kIters = 2'000'000;
constexpr int kRounds = 5;

#if defined(CCDB_DEADLOCK_DETECT)
constexpr double kDetectorCompiled = 1;
#else
constexpr double kDetectorCompiled = 0;
#endif

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-rounds ns per op for `op` run kIters times.
template <typename Op>
double MeasureNs(Op op) {
  double best = 1e100;
  for (int round = 0; round < kRounds; ++round) {
    const double start = NowS();
    for (int i = 0; i < kIters; ++i) op();
    const double s = NowS() - start;
    if (s < best) best = s;
  }
  return best * 1e9 / kIters;
}

void RunSuite(double enabled_flag, double* lock_unlock_ns) {
  Mutex leaf{"bench.lockgraph_leaf"};
  Mutex outer{"bench.lockgraph_outer"};
  Mutex inner{"bench.lockgraph_inner"};
  Mutex anon;

  const std::vector<BenchParam> params = {
      {"detector", kDetectorCompiled}, {"enabled", enabled_flag}};

  const double leaf_ns = MeasureNs([&] {
    MutexLock lock(leaf);
  });
  EmitResult(kBench, "lock_unlock", leaf_ns, "ns/op", params);
  *lock_unlock_ns = leaf_ns;

  EmitResult(kBench, "nested_pair", MeasureNs([&] {
               MutexLock a(outer);
               MutexLock b(inner);
             }),
             "ns/2locks", params);

  EmitResult(kBench, "anonymous", MeasureNs([&] {
               MutexLock lock(anon);
             }),
             "ns/op", params);
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  if (!JsonOutputEnabled()) {
    std::printf("bench_lockgraph: detector %s\n",
                kDetectorCompiled != 0 ? "compiled in" : "compiled OUT");
  }

  double enabled_ns = 0;
  double disabled_ns = 0;
  RunSuite(lock_graph::Enabled() ? 1 : 0, &enabled_ns);
#if defined(CCDB_DEADLOCK_DETECT)
  lock_graph::SetEnabled(false);
  RunSuite(0, &disabled_ns);
  lock_graph::SetEnabled(true);
  EmitResult(kBench, "hook_overhead", enabled_ns - disabled_ns, "ns/op",
             {{"detector", kDetectorCompiled},
              {"overhead_pct",
               disabled_ns > 0
                   ? (enabled_ns - disabled_ns) * 100.0 / disabled_ns
                   : 0}});
#else
  (void)disabled_ns;
#endif
  return 0;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) { return ccdb::bench::Main(argc, argv); }
