// Ablation: the cost of Fourier–Motzkin elimination.
//
// §1.1 of the paper motivates restricting CQA/CDB to *linear* constraints
// "for reasons of query evaluation efficiency". This bench quantifies the
// engine the projection operator runs on: elimination cost as the number
// of constraints and eliminated variables grows, plus the satisfiability
// and redundancy-removal procedures built on it.

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }

/// A random conjunction over `vars` variables with `count` constraints.
Conjunction RandomConjunction(int vars, int count, uint64_t seed) {
  Rng rng(seed);
  Conjunction c;
  for (int i = 0; i < count; ++i) {
    LinearExpr e;
    for (int v = 0; v < vars; ++v) {
      e.AddTerm("v" + std::to_string(v), Rational(rng.UniformInt(-3, 3)));
    }
    e.AddConstant(Rational(rng.UniformInt(-20, 20)));
    c.Add(Constraint(std::move(e), rng.UniformInt(0, 1)
                                       ? ConstraintOp::kLe
                                       : ConstraintOp::kLt));
  }
  return c;
}

void BM_EliminateOneVariable(benchmark::State& state) {
  const int constraints = static_cast<int>(state.range(0));
  Conjunction c = RandomConjunction(3, constraints, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm::EliminateVariable(c, "v0"));
  }
  state.SetLabel(std::to_string(constraints) + " constraints, 3 vars");
}
BENCHMARK(BM_EliminateOneVariable)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ProjectToOneVariable(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  // Box-like constraints keep elimination well-behaved: 2 bounds per var
  // plus a few diagonal couplings.
  Conjunction c;
  Rng rng(11);
  for (int v = 0; v < vars; ++v) {
    std::string name = "v" + std::to_string(v);
    c.Add(Constraint::Ge(V(name), LinearExpr::Constant(
                                      Rational(rng.UniformInt(-10, 0)))));
    c.Add(Constraint::Le(V(name), LinearExpr::Constant(
                                      Rational(rng.UniformInt(1, 10)))));
    if (v > 0) {
      c.Add(Constraint::Le(V(name) - V("v" + std::to_string(v - 1)),
                           LinearExpr::Constant(Rational(5))));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm::Project(c, {"v0"}));
  }
  state.SetLabel(std::to_string(vars) + " vars eliminated to 1");
}
BENCHMARK(BM_ProjectToOneVariable)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_Satisfiability(benchmark::State& state) {
  Conjunction c = RandomConjunction(4, static_cast<int>(state.range(0)), 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm::IsSatisfiable(c));
  }
}
BENCHMARK(BM_Satisfiability)->Arg(4)->Arg(8)->Arg(12);

void BM_RemoveRedundant(benchmark::State& state) {
  // Stacked parallel bounds: heavy redundancy to discover.
  Conjunction c;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    c.Add(Constraint::Le(V("x") + V("y") * Rational(2),
                         LinearExpr::Constant(Rational(10 + i))));
    c.Add(Constraint::Ge(V("x"), LinearExpr::Constant(Rational(-i))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm::RemoveRedundant(c));
  }
}
BENCHMARK(BM_RemoveRedundant)->Arg(4)->Arg(8)->Arg(16);

void BM_TupleBoundingBox(benchmark::State& state) {
  // The index layer's per-tuple work (§5): intervals of both attributes.
  Conjunction c;
  c.Add(Constraint::Ge(V("x") + V("y"), LinearExpr::Constant(Rational(2))));
  c.Add(Constraint::Le(V("x") - V("y"), LinearExpr::Constant(Rational(8))));
  c.Add(Constraint::Le(V("x"), LinearExpr::Constant(Rational(20))));
  c.Add(Constraint::Ge(V("y"), LinearExpr::Constant(Rational(0))));
  c.Add(Constraint::Le(V("y"), LinearExpr::Constant(Rational(15))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm::BoundingBox(c, {"x", "y"}));
  }
}
BENCHMARK(BM_TupleBoundingBox);

}  // namespace
}  // namespace ccdb
