// Extension experiment: attribute grouping at arity 3 (spatiotemporal).
//
// §5.4 closes with the open problem "determine a set of subsets of X that
// should correspond to indices over X". The paper evaluates only the
// two-attribute case; this bench extends the experiment to the paper's
// own motivating data shape — spatiotemporal trajectories over (t, x, y),
// like the Hurricane relation — and compares the natural groupings:
//
//   {t,x,y}    one 3-D R*-tree
//   {x,y}+{t}  a spatial 2-D tree plus a temporal 1-D tree (the classic
//              GIS arrangement), intersected
//   {t}+{x}+{y}  three 1-D trees, intersected
//
// Workload: "which trajectories passed region R during [t1, t2]?" —
// conjunctive over all three attributes. Expected (and observed): the
// fully joint 3-D index wins, the spatial+temporal split is second, and
// fully separate indexing pays the §5.3 penalty twice.

#include <algorithm>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

/// A trajectory segment's (t, x, y) bounding key: position drifts with
/// time (x ~ v*t), which couples the attributes like real movement data.
struct Segment {
  Rect key;  // 3-D
};

std::vector<Segment> GenerateTrajectories(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Segment> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    double t0 = static_cast<double>(rng.UniformInt(0, 2900));
    double dt = static_cast<double>(rng.UniformInt(5, 100));
    // Position loosely follows time (a moving object crossing the domain).
    double x0 = std::clamp(t0 + static_cast<double>(rng.UniformInt(-400, 400)),
                           0.0, 3000.0);
    double y0 = static_cast<double>(rng.UniformInt(0, 2900));
    double dx = static_cast<double>(rng.UniformInt(5, 100));
    double dy = static_cast<double>(rng.UniformInt(5, 100));
    Segment s;
    s.key = Rect::Make3D(t0, t0 + dt, x0, x0 + dx, y0, y0 + dy);
    out.push_back(s);
  }
  return out;
}

std::vector<uint64_t> Intersect(std::vector<uint64_t> a,
                                std::vector<uint64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace
}  // namespace ccdb::bench

int main() {
  using namespace ccdb::bench;  // NOLINT
  using namespace ccdb;        // NOLINT
  printf("=== Attribute grouping at arity 3: (t, x, y) trajectories ===\n");
  printf("(extension of §5.4's open problem; 10,000 segments, 100 "
         "spatiotemporal queries)\n\n");

  auto segments = GenerateTrajectories(10000, 71);

  PageManager disk3, disk_st, disk_sep;
  BufferPool pool3(&disk3, 0), pool_st(&disk_st, 0), pool_sep(&disk_sep, 0);
  RStarTree txy(&pool3, 3);
  RStarTree xy(&pool_st, 2), t_of_st(&pool_st, 1);
  RStarTree t1(&pool_sep, 1), x1(&pool_sep, 1), y1(&pool_sep, 1);
  for (uint64_t i = 0; i < segments.size(); ++i) {
    const Rect& k = segments[i].key;
    (void)txy.Insert(k, i);
    (void)xy.Insert(Rect::Make2D(k.lo[1], k.hi[1], k.lo[2], k.hi[2]), i);
    (void)t_of_st.Insert(Rect::Make1D(k.lo[0], k.hi[0]), i);
    (void)t1.Insert(Rect::Make1D(k.lo[0], k.hi[0]), i);
    (void)x1.Insert(Rect::Make1D(k.lo[1], k.hi[1]), i);
    (void)y1.Insert(Rect::Make1D(k.lo[2], k.hi[2]), i);
  }

  Rng rng(72);
  uint64_t total3 = 0, total_st = 0, total_sep = 0;
  size_t checked = 0;
  bool mismatch = false;
  for (int q = 0; q < 100; ++q) {
    double t0 = static_cast<double>(rng.UniformInt(0, 2800));
    double x0 = static_cast<double>(rng.UniformInt(0, 2800));
    double y0 = static_cast<double>(rng.UniformInt(0, 2800));
    double dt = static_cast<double>(rng.UniformInt(20, 200));
    double dxy = static_cast<double>(rng.UniformInt(20, 200));
    Rect q3 = Rect::Make3D(t0, t0 + dt, x0, x0 + dxy, y0, y0 + dxy);

    disk3.ResetStats();
    auto h3 = txy.Search(q3);
    total3 += disk3.stats().reads;

    disk_st.ResetStats();
    auto hxy = xy.Search(Rect::Make2D(x0, x0 + dxy, y0, y0 + dxy));
    auto ht = t_of_st.Search(Rect::Make1D(t0, t0 + dt));
    total_st += disk_st.stats().reads;

    disk_sep.ResetStats();
    auto st = t1.Search(Rect::Make1D(t0, t0 + dt));
    auto sx = x1.Search(Rect::Make1D(x0, x0 + dxy));
    auto sy = y1.Search(Rect::Make1D(y0, y0 + dxy));
    total_sep += disk_sep.stats().reads;

    if (h3.ok() && hxy.ok() && ht.ok() && st.ok() && sx.ok() && sy.ok()) {
      auto a = *h3;
      std::sort(a.begin(), a.end());
      auto b = Intersect(*hxy, *ht);
      auto c = Intersect(Intersect(*st, *sx), *sy);
      if (a != b || a != c) mismatch = true;
      checked += a.size();
    }
  }

  printf("  grouping              total disk accesses (100 queries)\n");
  printf("  {t,x,y} 3-D joint     %10llu\n",
         static_cast<unsigned long long>(total3));
  printf("  {x,y} + {t}           %10llu\n",
         static_cast<unsigned long long>(total_st));
  printf("  {t} + {x} + {y}       %10llu\n",
         static_cast<unsigned long long>(total_sep));
  printf("  (total hits across queries: %zu; results agree: %s)\n",
         checked, mismatch ? "NO (!)" : "yes");

  printf("\n== grouping verdict ==\n");
  printf("  [%s] full joint beats spatial+temporal beats fully separate\n",
         (total3 < total_st && total_st < total_sep) ? "PASS" : "FAIL");
  return 0;
}
