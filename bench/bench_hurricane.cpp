// End-to-end: the §3.3 Hurricane case-study queries through the full
// stack (data file -> parser -> step-based language -> CQA evaluation).

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

Database LoadHurricane() {
  Database db;
  Status s = lang::LoadDatabaseFile(
      std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db);
  if (!s.ok()) std::abort();
  return db;
}

void RunScript(benchmark::State& state, const char* label,
               const char* script) {
  Database db = LoadHurricane();
  for (auto _ : state) {
    auto out = lang::RunQuery(script, &db);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(label);
}

void BM_Query1(benchmark::State& state) {
  RunScript(state, "who owned Land A and when",
            "R0 = select landId = A from Landownership\n"
            "R1 = project R0 on name, t\n");
}
BENCHMARK(BM_Query1);

void BM_Query2(benchmark::State& state) {
  RunScript(state, "parcels the hurricane passed",
            "R0 = join Hurricane and Land\n"
            "R1 = project R0 on landId\n");
}
BENCHMARK(BM_Query2);

void BM_Query3(benchmark::State& state) {
  RunScript(state, "owners hit between t=4 and t=9",
            "R0 = join Landownership and Land\n"
            "R1 = select t >= 4, t <= 9 from Hurricane\n"
            "R2 = join R0 and R1\n"
            "R3 = project R2 on name\n");
}
BENCHMARK(BM_Query3);

void BM_Query4(benchmark::State& state) {
  RunScript(state, "hurricane position at t=6",
            "R0 = select t = 6 from Hurricane\n"
            "R1 = project R0 on x, y\n");
}
BENCHMARK(BM_Query4);

void BM_Query5BufferJoin(benchmark::State& state) {
  RunScript(state, "parcels within 1/2 of the trajectory",
            "R0 = buffer-join LandFeatures and HurricanePath within 1/2\n");
}
BENCHMARK(BM_Query5BufferJoin);

void BM_Query6KNearest(benchmark::State& state) {
  RunScript(state, "2 parcels nearest the trajectory",
            "R0 = k-nearest HurricanePath and LandFeatures k 2\n");
}
BENCHMARK(BM_Query6KNearest);

void BM_LoadDataFile(benchmark::State& state) {
  for (auto _ : state) {
    Database db;
    Status s = lang::LoadDatabaseFile(
        std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_LoadDataFile);

}  // namespace
}  // namespace ccdb
