// Ablation: constraint vs vector representation of spatial data (§6).
//
// The paper argues that for spatial features the vector (geometric)
// representation can beat constraints: it avoids per-piece duplication and
// boundary redundancy, and operations like projection read straight off
// the vertices ("a region's projection onto either of the dimensions can
// be obtained by taking the appropriate coordinate of each point and
// finding the extrema", Example 8). This bench measures the same logical
// operations both ways:
//   - projection of a region onto x,
//   - point-in-region tests,
//   - pairwise feature distance,
// and reports the representation sizes.

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

/// A jagged (concave) polygon with `teeth` notches — decomposes into many
/// convex pieces.
geom::Polygon Comb(int teeth) {
  std::vector<geom::Point> ring;
  ring.emplace_back(0, 0);
  ring.emplace_back(4 * teeth, 0);
  ring.emplace_back(4 * teeth, 10);
  // Teeth along the top, right to left.
  for (int i = teeth; i-- > 0;) {
    ring.emplace_back(4 * i + 3, 10);
    ring.emplace_back(4 * i + 3, 6);
    ring.emplace_back(4 * i + 1, 6);
    ring.emplace_back(4 * i + 1, 10);
  }
  ring.emplace_back(0, 10);
  auto polygon = geom::Polygon::Make(std::move(ring));
  return polygon.value();
}

void BM_ProjectionVector(benchmark::State& state) {
  geom::Polygon polygon = Comb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Example 8: extrema of vertex coordinates.
    geom::Box box = polygon.BoundingBox();
    benchmark::DoNotOptimize(box);
  }
  state.SetLabel(std::to_string(polygon.size()) + " vertices");
}
BENCHMARK(BM_ProjectionVector)->Arg(4)->Arg(16)->Arg(64);

void BM_ProjectionConstraint(benchmark::State& state) {
  geom::Polygon polygon = Comb(static_cast<int>(state.range(0)));
  auto tuples = geom::PolygonToConstraintTuples(polygon, "x", "y");
  for (auto _ : state) {
    // Projection of the union: x-interval of every constraint tuple.
    fm::Interval total;
    bool first = true;
    for (const Conjunction& tuple : tuples) {
      fm::Interval iv = fm::VariableInterval(tuple, "x");
      if (first) {
        total = iv;
        first = false;
      } else {
        if (iv.lower && total.lower &&
            iv.lower->value < total.lower->value) {
          total.lower = iv.lower;
        }
        if (iv.upper && total.upper &&
            iv.upper->value > total.upper->value) {
          total.upper = iv.upper;
        }
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel(std::to_string(tuples.size()) + " constraint tuples");
}
BENCHMARK(BM_ProjectionConstraint)->Arg(4)->Arg(16)->Arg(64);

void BM_ContainmentVector(benchmark::State& state) {
  geom::Polygon polygon = Comb(static_cast<int>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    geom::Point p(Rational(rng.UniformInt(0, 4 * state.range(0))),
                  Rational(rng.UniformInt(0, 10)));
    benchmark::DoNotOptimize(polygon.Contains(p));
  }
}
BENCHMARK(BM_ContainmentVector)->Arg(4)->Arg(16)->Arg(64);

void BM_ContainmentConstraint(benchmark::State& state) {
  geom::Polygon polygon = Comb(static_cast<int>(state.range(0)));
  auto tuples = geom::PolygonToConstraintTuples(polygon, "x", "y");
  Rng rng(1);
  for (auto _ : state) {
    Assignment p{{"x", Rational(rng.UniformInt(0, 4 * state.range(0)))},
                 {"y", Rational(rng.UniformInt(0, 10))}};
    bool inside = false;
    for (const Conjunction& tuple : tuples) {
      if (tuple.IsSatisfiedBy(p)) {
        inside = true;
        break;
      }
    }
    benchmark::DoNotOptimize(inside);
  }
}
BENCHMARK(BM_ContainmentConstraint)->Arg(4)->Arg(16)->Arg(64);

void BM_RepresentationSize(benchmark::State& state) {
  geom::Polygon polygon = Comb(static_cast<int>(state.range(0)));
  auto tuples = geom::PolygonToConstraintTuples(polygon, "x", "y");
  size_t constraint_count = 0;
  for (const Conjunction& tuple : tuples) {
    constraint_count += tuple.size();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::PolygonToConstraintTuples(polygon, "x",
                                                             "y"));
  }
  // §6.2's redundancy claim in numbers: vertices vs constraints.
  state.counters["vertices"] = static_cast<double>(polygon.size());
  state.counters["convex_pieces"] = static_cast<double>(tuples.size());
  state.counters["constraints"] = static_cast<double>(constraint_count);
}
BENCHMARK(BM_RepresentationSize)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace ccdb
