// Ablation: CQA operator evaluation cost.
//
// The paper positions CQA as the evaluation layer (Figure 1). This bench
// measures each operator on synthetic constraint relations, plus the
// optimizer's effect (select pushdown) on a join pipeline — the paper's
// "operator reordering".

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

/// `n` unit boxes along the diagonal, as constraint tuples over (x, y).
Relation DiagonalRelation(int n, const std::string& xattr,
                          const std::string& yattr) {
  Relation rel(Schema::Make({Schema::ConstraintRational(xattr),
                             Schema::ConstraintRational(yattr)})
                   .value());
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.AddConstraint(Constraint::Ge(V(xattr), C(i)));
    t.AddConstraint(Constraint::Le(V(xattr), C(i + 1)));
    t.AddConstraint(Constraint::Ge(V(yattr), C(i)));
    t.AddConstraint(Constraint::Le(V(yattr), C(i + 1)));
    Status s = rel.Insert(std::move(t));
    (void)s;
  }
  return rel;
}

void BM_Select(benchmark::State& state) {
  Relation rel = DiagonalRelation(static_cast<int>(state.range(0)), "x", "y");
  Predicate pred;
  pred.linear.push_back(Constraint::Le(V("x") + V("y"), C(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqa::Select(rel, pred));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Select)->Arg(100)->Arg(400);

void BM_ProjectEliminates(benchmark::State& state) {
  Relation rel = DiagonalRelation(static_cast<int>(state.range(0)), "x", "y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqa::Project(rel, {"x"}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProjectEliminates)->Arg(100)->Arg(400);

void BM_NaturalJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation lhs = DiagonalRelation(n, "x", "y");
  Relation rhs = DiagonalRelation(n, "y", "z");  // shares y
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqa::NaturalJoin(lhs, rhs));
  }
  state.SetLabel(std::to_string(n) + "x" + std::to_string(n) + " pairs");
}
BENCHMARK(BM_NaturalJoin)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_Difference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation lhs = DiagonalRelation(n, "x", "y");
  // Subtract every other tuple, slightly shifted: forces DNF splitting.
  Relation rhs(lhs.schema());
  for (int i = 0; i < n; i += 2) {
    Tuple t;
    t.AddConstraint(Constraint::Ge(V("x"), C(i)));
    t.AddConstraint(Constraint::Le(V("x"), C(i + 1)));
    t.AddConstraint(Constraint::Ge(V("y") * Rational(2), C(2 * i + 1)));
    t.AddConstraint(Constraint::Le(V("y"), C(i + 1)));
    Status s = rhs.Insert(std::move(t));
    (void)s;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqa::Difference(lhs, rhs));
  }
  state.SetLabel(std::to_string(n) + " minus " + std::to_string(n / 2));
}
BENCHMARK(BM_Difference)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_JoinPipelineOptimized(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  Database db;
  Status s1 = db.Create("R", DiagonalRelation(60, "a", "shared"));
  Status s2 = db.Create("S", DiagonalRelation(60, "shared", "b"));
  (void)s1;
  (void)s2;
  Predicate pred;
  pred.linear.push_back(Constraint::Ge(V("a"), C(55)));
  pred.linear.push_back(Constraint::Le(V("b"), C(5)));
  auto plan = cqa::PlanNode::Select(
      cqa::PlanNode::Join(cqa::PlanNode::Scan("R"), cqa::PlanNode::Scan("S")),
      pred);
  if (optimize) plan = cqa::Optimize(std::move(plan), db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cqa::Execute(*plan, db));
  }
  state.SetLabel(optimize ? "with select pushdown" : "naive plan");
}
BENCHMARK(BM_JoinPipelineOptimized)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ccdb
