// Throughput of the concurrent query service.
//
// Measures end-to-end queries/second of `service::QueryService` on a mixed
// read-only CQA workload (selections, projections, small joins over the
// §5.4 box data):
//   1. worker-pool scaling at 1/2/4/8 workers with the result cache off
//      (every query executes), and
//   2. cache-on vs cache-off at 4 workers (repeated hot scripts hit the
//      LRU result cache and skip parse/optimize/execute entirely).
//
// With --json each result is one machine-readable line (see
// bench_common.h), recorded in CI as the BENCH_* trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_service";

/// Distinct read-only scripts over the shared "Boxes" relation.
std::vector<std::string> MakeScripts(size_t count) {
  std::vector<std::string> scripts;
  for (size_t i = 0; i < count; ++i) {
    const int lo = static_cast<int>((i * 157) % 2400);
    const int lo2 = static_cast<int>((i * 311 + 500) % 2400);
    switch (i % 3) {
      case 0:
        scripts.push_back("R0 = select x >= " + std::to_string(lo) +
                          ", x <= " + std::to_string(lo + 400) +
                          " from Boxes\nR1 = project R0 on y");
        break;
      case 1:
        scripts.push_back("R0 = select y >= " + std::to_string(lo) +
                          ", y <= " + std::to_string(lo + 300) +
                          " from Boxes");
        break;
      default:
        scripts.push_back("R0 = select x >= " + std::to_string(lo) +
                          ", x <= " + std::to_string(lo + 250) +
                          " from Boxes\nR1 = select y >= " +
                          std::to_string(lo2) + ", y <= " +
                          std::to_string(lo2 + 250) +
                          " from Boxes\nR2 = join R0 and R1");
        break;
    }
  }
  return scripts;
}

struct RunResult {
  double qps = 0;
  double mean_us = 0;
  double p99_us = 0;
  double hit_rate = 0;
};

/// `total_queries` spread over one client thread (= session) per worker,
/// each executing synchronously; returns wall-clock throughput.
RunResult RunWorkload(Database* base, size_t workers, size_t cache_capacity,
                      const std::vector<std::string>& scripts,
                      size_t total_queries) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 2 * workers + 8;
  options.cache_capacity = cache_capacity;
  service::QueryService service(base, options);

  const size_t clients = workers;
  const size_t per_client = total_queries / clients;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::SessionId id = service.OpenSession();
      for (size_t q = 0; q < per_client; ++q) {
        auto response =
            service.Execute(id, scripts[(c * 5 + q) % scripts.size()]);
        if (!response.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  service::ServiceMetrics m = service.Metrics();
  RunResult out;
  out.qps = static_cast<double>(per_client * clients) / seconds;
  out.mean_us = m.latency_mean_us;
  out.p99_us = m.latency_p99_us;
  const uint64_t lookups = m.cache_hits + m.cache_misses;
  out.hit_rate = lookups ? static_cast<double>(m.cache_hits) /
                               static_cast<double>(lookups)
                         : 0.0;
  return out;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) {
  using namespace ccdb;        // NOLINT: benchmark brevity
  using namespace ccdb::bench;  // NOLINT
  ParseBenchFlags(argc, argv);

  WorkloadParams params;
  params.data_count = 300;
  Database base;
  Status created = base.Create(
      "Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)));
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.ToString().c_str());
    return 1;
  }

  const std::vector<std::string> scripts = bench::MakeScripts(64);
  const size_t kTotalQueries = 192;

  if (!JsonOutputEnabled()) {
    std::printf("Query service throughput — %zu queries, %zu distinct "
                "scripts, 300 data boxes\n",
                kTotalQueries, scripts.size());
  }

  // 1. Worker scaling, cache off.
  double qps_1w = 0;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    RunResult r = RunWorkload(&base, workers, /*cache_capacity=*/0, scripts,
                              kTotalQueries);
    if (workers == 1) qps_1w = r.qps;
    const std::string name =
        "throughput_w" + std::to_string(workers) + "_cache_off";
    EmitResult(kBench, name.c_str(), r.qps, "qps",
               {{"workers", static_cast<double>(workers)},
                {"speedup_vs_1w", qps_1w > 0 ? r.qps / qps_1w : 1.0},
                {"mean_latency_us", r.mean_us},
                {"p99_latency_us", r.p99_us}});
  }

  // 2. Cache ablation at 4 workers.
  for (size_t capacity : {0u, 128u}) {
    RunResult r = RunWorkload(&base, /*workers=*/4, capacity, scripts,
                              kTotalQueries);
    const std::string name = std::string("throughput_w4_cache_") +
                             (capacity ? "on" : "off");
    EmitResult(kBench, name.c_str(), r.qps, "qps",
               {{"workers", 4},
                {"cache_capacity", static_cast<double>(capacity)},
                {"cache_hit_rate", r.hit_rate},
                {"mean_latency_us", r.mean_us},
                {"p99_latency_us", r.p99_us}});
  }
  return 0;
}
