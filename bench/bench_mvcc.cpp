// Reader latency under the MVCC catalog: writer-idle vs writer-storm.
//
// The point of the copy-on-write snapshot catalog is that readers pin a
// snapshot at submission and never block behind catalog writers. This
// bench measures read-query latency (client-observed, p50/p99) at
// 1/2/4/8 concurrent readers, first with the catalog quiescent and then
// under a paced writer committing BEGIN/COMMIT transactions that replace
// the very relation the readers scan. The acceptance bar for the MVCC
// PR: storm p99 within 1.5x of the idle baseline at every reader count.
//
// The result cache is off so every query executes (a storm would
// invalidate the cache and make the comparison cache-hit-rate, not
// catalog-contention). The writer is paced (~1 ms between commits)
// because CI runs single-core: an unpaced writer would measure CPU
// starvation, not lock contention (~2 ms between commits). Replacement
// relations are generated up front for the same reason.
//
// With --json each result is one machine-readable line (see
// bench_common.h), recorded in CI as the BENCH_mvcc.json trajectory.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_mvcc";

/// Distinct read-only scripts over the shared "Boxes" relation.
std::vector<std::string> MakeScripts(size_t count) {
  std::vector<std::string> scripts;
  for (size_t i = 0; i < count; ++i) {
    const int lo = static_cast<int>((i * 157) % 2400);
    if (i % 2 == 0) {
      scripts.push_back("R0 = select x >= " + std::to_string(lo) +
                        ", x <= " + std::to_string(lo + 400) +
                        " from Boxes\nR1 = project R0 on y");
    } else {
      scripts.push_back("R0 = select y >= " + std::to_string(lo) +
                        ", y <= " + std::to_string(lo + 300) +
                        " from Boxes");
    }
  }
  return scripts;
}

struct LatencyResult {
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  uint64_t commits = 0;  ///< writer transactions committed during the run
};

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(samples->size() - 1) + 0.5);
  return (*samples)[std::min(idx, samples->size() - 1)];
}

/// Runs `per_reader` queries on each of `readers` sessions; when
/// `storm` is set, a paced writer concurrently commits one-statement
/// transactions replacing "Boxes" for the whole duration.
LatencyResult RunReaders(Database* base, size_t readers, bool storm,
                         const std::vector<std::string>& scripts,
                         const std::vector<Relation>& replacements,
                         size_t per_reader) {
  service::ServiceOptions options;
  options.num_workers = readers;
  options.max_queue_depth = 2 * readers + 8;
  options.cache_capacity = 0;  // every query executes
  service::QueryService service(base, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer;
  if (storm) {
    writer = std::thread([&] {
      const service::SessionId id = service.OpenSession();
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Status s = service.Begin(id);
        if (s.ok()) {
          s = service.ReplaceRelation(id, "Boxes",
                                      replacements[i % replacements.size()]);
        }
        if (s.ok()) s = service.Commit(id);
        if (s.ok()) {
          ++i;
          commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          IgnoreError(service.Rollback(id));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      IgnoreError(service.CloseSession(id));
    });
  }

  std::mutex samples_mu;
  std::vector<double> samples;
  samples.reserve(readers * per_reader);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      const service::SessionId id = service.OpenSession();
      std::vector<double> local;
      local.reserve(per_reader);
      for (size_t q = 0; q < per_reader; ++q) {
        const auto start = std::chrono::steady_clock::now();
        auto response =
            service.Execute(id, scripts[(r * 7 + q) % scripts.size()]);
        const auto end = std::chrono::steady_clock::now();
        if (!response.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status().ToString().c_str());
          continue;
        }
        local.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
      }
      IgnoreError(service.CloseSession(id));
      std::lock_guard<std::mutex> lock(samples_mu);
      samples.insert(samples.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  if (writer.joinable()) writer.join();

  LatencyResult out;
  out.commits = commits.load();
  out.p50_us = Percentile(&samples, 0.50);
  out.p99_us = Percentile(&samples, 0.99);
  double sum = 0;
  for (double s : samples) sum += s;
  out.mean_us = samples.empty() ? 0 : sum / static_cast<double>(samples.size());
  return out;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) {
  using namespace ccdb;         // NOLINT: benchmark brevity
  using namespace ccdb::bench;  // NOLINT
  ParseBenchFlags(argc, argv);

  WorkloadParams params;
  params.data_count = 200;
  Database base;
  Status created = base.Create(
      "Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)));
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.ToString().c_str());
    return 1;
  }

  // Same-size replacements, pre-generated so the single-core writer
  // spends its time committing, not generating data.
  std::vector<Relation> replacements;
  for (uint64_t seed = 11; seed < 19; ++seed) {
    replacements.push_back(
        BoxesToConstraintRelation(GenerateDataBoxes(seed, params)));
  }

  const std::vector<std::string> scripts = bench::MakeScripts(32);
  const size_t kPerReader = 96;

  if (!JsonOutputEnabled()) {
    std::printf("MVCC reader latency — %zu queries/reader, 200 data boxes, "
                "cache off, paced writer storm\n",
                kPerReader);
  }

  for (size_t readers : {1u, 2u, 4u, 8u}) {
    const LatencyResult idle = RunReaders(&base, readers, /*storm=*/false,
                                          scripts, replacements, kPerReader);
    const LatencyResult storm = RunReaders(&base, readers, /*storm=*/true,
                                           scripts, replacements, kPerReader);
    const double ratio = idle.p99_us > 0 ? storm.p99_us / idle.p99_us : 0;

    const std::string idle_name =
        "reader_p99_r" + std::to_string(readers) + "_idle";
    EmitResult(kBench, idle_name.c_str(), idle.p99_us, "us",
               {{"readers", static_cast<double>(readers)},
                {"p50_us", idle.p50_us},
                {"mean_us", idle.mean_us}});
    const std::string storm_name =
        "reader_p99_r" + std::to_string(readers) + "_storm";
    EmitResult(kBench, storm_name.c_str(), storm.p99_us, "us",
               {{"readers", static_cast<double>(readers)},
                {"p50_us", storm.p50_us},
                {"mean_us", storm.mean_us},
                {"writer_commits", static_cast<double>(storm.commits)},
                {"p99_vs_idle", ratio}});
  }
  return 0;
}
