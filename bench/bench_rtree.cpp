// Ablation: the R*-tree itself (the index substrate of §5).
//
// Throughput of insert/search/delete at both dimensionalities, plus the
// motivating comparison: indexed box selection vs heap-file scan on the
// paper's 10,000-rectangle workload.

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

Rect RandomBox(Rng* rng, int dims) {
  double x = static_cast<double>(rng->UniformInt(0, 3000));
  double w = static_cast<double>(rng->UniformInt(1, 100));
  if (dims == 1) return Rect::Make1D(x, x + w);
  double y = static_cast<double>(rng->UniformInt(0, 3000));
  double h = static_cast<double>(rng->UniformInt(1, 100));
  return Rect::Make2D(x, x + w, y, y + h);
}

void BM_Insert(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    PageManager disk;
    BufferPool pool(&disk, 0);
    RStarTree tree(&pool, dims);
    Rng rng(1);
    state.ResumeTiming();
    for (uint64_t i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(tree.Insert(RandomBox(&rng, dims), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel(std::to_string(dims) + "-D");
}
BENCHMARK(BM_Insert)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Search(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  PageManager disk;
  BufferPool pool(&disk, 0);
  RStarTree tree(&pool, dims);
  Rng rng(2);
  for (uint64_t i = 0; i < 10000; ++i) {
    Status s = tree.Insert(RandomBox(&rng, dims), i);
    (void)s;
  }
  uint64_t accesses = 0;
  uint64_t searches = 0;
  for (auto _ : state) {
    disk.ResetStats();
    benchmark::DoNotOptimize(tree.Search(RandomBox(&rng, dims)));
    accesses += disk.stats().reads;
    ++searches;
  }
  state.SetLabel(std::to_string(dims) + "-D over 10k entries");
  state.counters["pages/query"] =
      static_cast<double>(accesses) / static_cast<double>(searches);
}
BENCHMARK(BM_Search)->Arg(1)->Arg(2);

void BM_Delete(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PageManager disk;
    BufferPool pool(&disk, 0);
    RStarTree tree(&pool, 2);
    Rng rng(3);
    std::vector<Rect> boxes;
    for (uint64_t i = 0; i < 2000; ++i) {
      boxes.push_back(RandomBox(&rng, 2));
      Status s = tree.Insert(boxes.back(), i);
      (void)s;
    }
    state.ResumeTiming();
    for (uint64_t i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(tree.Delete(boxes[i], i));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Delete)->Unit(benchmark::kMillisecond);

void BM_BoxSelectIndexedVsScan(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  auto boxes = GenerateDataBoxes(99);
  Relation rel = BoxesToConstraintRelation(boxes);
  PageManager disk;
  BufferPool pool(&disk, 0);
  auto stored = cqa::StoredRelation::Create(
      &pool, rel,
      indexed ? cqa::AccessIndexKind::kJoint : cqa::AccessIndexKind::kNone,
      "x", "y", Rect::Make2D(-10, 3110, -10, 3110));
  if (!stored.ok()) {
    state.SkipWithError(stored.status().ToString().c_str());
    return;
  }
  Rng rng(4);
  uint64_t reads = 0, queries = 0;
  for (auto _ : state) {
    double x = static_cast<double>(rng.UniformInt(0, 3000));
    double y = static_cast<double>(rng.UniformInt(0, 3000));
    disk.ResetStats();
    benchmark::DoNotOptimize(
        (*stored)->BoxSelect(BoxQuery::Both(x, x + 50, y, y + 50)));
    reads += disk.stats().reads;
    ++queries;
  }
  state.SetLabel(indexed ? "joint index + refine" : "heap scan + refine");
  state.counters["pages/query"] =
      static_cast<double>(reads) / static_cast<double>(queries);
}
BENCHMARK(BM_BoxSelectIndexedVsScan)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ccdb
