// Overhead of query tracing.
//
// Runs the paper's experiment-2 style join workload (selections on x and y
// over the §5.4 box data, then a natural join) through the plan executor in
// three observability modes:
//   off           plain Execute — no counter scope, no spans;
//   counters      an obs::CounterScope active (the per-query trace context
//                 every service query pays), untraced execution;
//   full_spans    ExecuteTraced — per-operator TraceNode tree with wall
//                 times, tuple flow, and counter deltas.
// The interesting numbers are the counters/full overhead percentages vs
// off: the design target is full-span overhead under 5%.
//
// With --json each result is one machine-readable line (see
// bench_common.h), recorded in CI as the BENCH_* trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_trace";

/// One compiled+optimized experiment-2 join query: boxes overlapping an
/// x-band joined with boxes overlapping a y-band.
Result<std::unique_ptr<cqa::PlanNode>> MakeJoinPlan(const Database& db,
                                                    int x_lo, int y_lo) {
  const std::string script =
      "R0 = select x >= " + std::to_string(x_lo) + ", x <= " +
      std::to_string(x_lo + 250) + " from Boxes\n" +
      "R1 = select y >= " + std::to_string(y_lo) + ", y <= " +
      std::to_string(y_lo + 250) + " from Boxes\n" +
      "R2 = join R0 and R1";
  CCDB_ASSIGN_OR_RETURN(lang::CompiledScript compiled,
                        lang::CompileScript(script, db));
  return cqa::Optimize(std::move(compiled.plan), db);
}

enum class Mode { kOff, kCounters, kFullSpans };

/// Total wall seconds to execute every plan once in the given mode.
double RunMode(const std::vector<std::unique_ptr<cqa::PlanNode>>& plans,
               const Database& db, Mode mode) {
  const auto start = std::chrono::steady_clock::now();
  for (const auto& plan : plans) {
    Result<Relation> out = Status::OK();
    switch (mode) {
      case Mode::kOff:
        out = cqa::Execute(*plan, db);
        break;
      case Mode::kCounters: {
        obs::CounterScope scope;
        out = cqa::Execute(*plan, db);
        break;
      }
      case Mode::kFullSpans: {
        obs::TraceNode root;
        out = cqa::ExecuteTraced(*plan, db, &root);
        break;
      }
    }
    if (!out.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   out.status().ToString().c_str());
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) {
  using namespace ccdb;         // NOLINT: benchmark brevity
  using namespace ccdb::bench;  // NOLINT
  ParseBenchFlags(argc, argv);

  WorkloadParams params;
  params.data_count = 250;
  Database db;
  Status created = db.Create(
      "Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)));
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.ToString().c_str());
    return 1;
  }

  constexpr size_t kQueries = 12;
  std::vector<std::unique_ptr<cqa::PlanNode>> plans;
  for (size_t i = 0; i < kQueries; ++i) {
    const int x_lo = static_cast<int>((i * 157) % 2400);
    const int y_lo = static_cast<int>((i * 311 + 500) % 2400);
    auto plan = MakeJoinPlan(db, x_lo, y_lo);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(std::move(plan).value());
  }

  constexpr int kRounds = 7;
  if (!JsonOutputEnabled()) {
    std::printf("Tracing overhead — %zu experiment-2 join queries over %zu "
                "data boxes, best of %d rounds\n",
                kQueries, params.data_count, kRounds);
  }

  // Warm-up round (page in code and data; not measured).
  (void)RunMode(plans, db, Mode::kOff);

  // Best-of-N per mode, interleaved so drift hits all modes alike: on a
  // shared machine the minimum approximates each mode's noise-free floor.
  double best_off = 0, best_counters = 0, best_full = 0;
  for (int round = 0; round < kRounds; ++round) {
    const double off = RunMode(plans, db, Mode::kOff);
    const double counters = RunMode(plans, db, Mode::kCounters);
    const double full = RunMode(plans, db, Mode::kFullSpans);
    if (round == 0 || off < best_off) best_off = off;
    if (round == 0 || counters < best_counters) best_counters = counters;
    if (round == 0 || full < best_full) best_full = full;
  }

  const double per_query = 1e6 / static_cast<double>(kQueries);
  const double counters_pct = 100.0 * (best_counters - best_off) / best_off;
  const double full_pct = 100.0 * (best_full - best_off) / best_off;
  EmitResult(kBench, "trace_off", best_off * per_query, "us/query",
             {{"queries", static_cast<double>(kQueries)}});
  EmitResult(kBench, "trace_counters_only", best_counters * per_query,
             "us/query", {{"overhead_pct", counters_pct}});
  EmitResult(kBench, "trace_full_spans", best_full * per_query, "us/query",
             {{"overhead_pct", full_pct}});
  return 0;
}
