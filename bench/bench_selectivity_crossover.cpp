// The §5.3 worked example as a parameter sweep.
//
// "Suppose that for each of the two constraints above, the selectivity is
//  very low; about half of all tuples intersect x < a and about half
//  intersect y > b. However, suppose very few tuples satisfy both ...
//  the advantage of our approach becomes very pronounced, reducing the
//  time performance from linear to logarithmic in the size of data."
//
// We generate data along the diagonal (y ~ x + noise) so each half-plane
// alone matches ~50% of tuples while the conjunction x <= a AND y >= b
// (a = b = 1500) matches almost nothing, and sweep the noise width — from
// perfectly correlated to uniform — to show where the joint/separate gap
// grows and shrinks. We also sweep the data size to exhibit the
// linear-vs-logarithmic scaling the paper claims.

#include "bench_common.h"

namespace ccdb::bench {
namespace {

std::vector<geom::Box> DiagonalBoxes(size_t count, int64_t noise,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Box> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int64_t x = rng.UniformInt(0, 3000);
    int64_t y = noise >= 3000
                    ? rng.UniformInt(0, 3000)
                    : std::clamp<int64_t>(x + rng.UniformInt(-noise, noise),
                                          0, 3000);
    int64_t w = rng.UniformInt(1, 100);
    int64_t h = rng.UniformInt(1, 100);
    boxes.push_back(geom::Box{Rational(x), Rational(x + w), Rational(y),
                              Rational(y + h)});
  }
  return boxes;
}

}  // namespace
}  // namespace ccdb::bench

int main() {
  using namespace ccdb::bench;  // NOLINT
  using namespace ccdb;        // NOLINT
  printf("=== §5.3 worked example: conjunctively-selective queries ===\n");
  printf("query: x <= 1500 AND y >= 1500; per-attribute selectivity ~50%%\n");

  const BoxQuery query = BoxQuery::Both(-10, 1500, 1500, 3110);

  printf("\n-- sweep 1: attribute correlation (10,000 tuples) --\n");
  printf("  %-22s %14s %17s %9s\n", "diagonal noise", "joint accesses",
         "separate accesses", "hits");
  for (int64_t noise : {50, 150, 500, 1500, 3000}) {
    auto boxes = DiagonalBoxes(10000, noise, 42);
    StrategyPair pair(boxes, DataVariant::kConstraint);
    auto joint = pair.MeasureJoint(query);
    auto separate = pair.MeasureSeparate(query);
    const char* label = noise >= 3000 ? "uniform (no corr.)" : "";
    printf("  +/-%-6lld %-11s %14llu %17llu %9zu\n",
           static_cast<long long>(noise), label,
           static_cast<unsigned long long>(joint.reads),
           static_cast<unsigned long long>(separate.reads), joint.hits);
  }

  printf("\n-- sweep 2: data size scaling (noise +/-150) --\n");
  printf("  %-10s %14s %17s %16s\n", "tuples", "joint accesses",
         "separate accesses", "separate/joint");
  double first_ratio = 0, last_ratio = 0;
  for (size_t n : {1000u, 2000u, 5000u, 10000u, 20000u, 40000u}) {
    auto boxes = DiagonalBoxes(n, 150, 42);
    StrategyPair pair(boxes, DataVariant::kConstraint);
    auto joint = pair.MeasureJoint(query);
    auto separate = pair.MeasureSeparate(query);
    double ratio = static_cast<double>(separate.reads) /
                   static_cast<double>(joint.reads);
    if (n == 1000u) first_ratio = ratio;
    last_ratio = ratio;
    printf("  %-10zu %14llu %17llu %16.2f\n", n,
           static_cast<unsigned long long>(joint.reads),
           static_cast<unsigned long long>(separate.reads), ratio);
  }

  printf("\n== §5.3 verdict ==\n");
  printf("  [%s] separate/joint gap widens with data size "
         "(linear vs logarithmic: %.1fx -> %.1fx)\n",
         last_ratio > first_ratio ? "PASS" : "FAIL", first_ratio,
         last_ratio);
  return 0;
}
