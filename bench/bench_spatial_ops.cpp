// Ablation: whole-feature operators (§4) — indexed vs nested loop.
//
// Buffer-Join and k-Nearest over synthetic feature sets, showing that the
// operators are index-accelerable (the filter-refine structure) while the
// nested-loop baseline grows quadratically in feature count.

#include <benchmark/benchmark.h>

#include "ccdb.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Relation RandomFeatures(int count, uint64_t seed) {
  Relation rel(Schema::Make({Schema::RelationalString("fid"),
                             Schema::ConstraintRational("x"),
                             Schema::ConstraintRational("y")})
                   .value());
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    Tuple t;
    t.SetValue("fid", Value::String("f" + std::to_string(i)));
    int64_t x = rng.UniformInt(0, 3000);
    int64_t y = rng.UniformInt(0, 3000);
    t.AddConstraint(Constraint::Ge(V("x"), C(x)));
    t.AddConstraint(Constraint::Le(V("x"), C(x + rng.UniformInt(5, 40))));
    t.AddConstraint(Constraint::Ge(V("y"), C(y)));
    t.AddConstraint(Constraint::Le(V("y"), C(y + rng.UniformInt(5, 40))));
    Status s = rel.Insert(std::move(t));
    (void)s;
  }
  return rel;
}

void BM_BufferJoin(benchmark::State& state) {
  const int features = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  auto lhs = cqa::FeatureSet::FromRelation(RandomFeatures(features, 5));
  auto rhs = cqa::FeatureSet::FromRelation(RandomFeatures(features, 6));
  if (!lhs.ok() || !rhs.ok()) {
    state.SkipWithError("feature set construction failed");
    return;
  }
  cqa::SpatialOptions opts;
  opts.use_index = indexed;
  size_t pairs = 0;
  for (auto _ : state) {
    auto out = cqa::BufferJoin(*lhs, *rhs, Rational(60), opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    pairs = out->size();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(indexed ? "indexed" : "nested-loop") + ", " +
                 std::to_string(features) + " features, " +
                 std::to_string(pairs) + " pairs");
}
BENCHMARK(BM_BufferJoin)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

void BM_KNearest(benchmark::State& state) {
  const int features = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  auto lhs = cqa::FeatureSet::FromRelation(RandomFeatures(features, 7));
  auto rhs = cqa::FeatureSet::FromRelation(RandomFeatures(features, 8));
  if (!lhs.ok() || !rhs.ok()) {
    state.SkipWithError("feature set construction failed");
    return;
  }
  cqa::SpatialOptions opts;
  opts.use_index = indexed;
  for (auto _ : state) {
    auto out = cqa::KNearest(*lhs, *rhs, 3, opts);
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(indexed ? "indexed" : "nested-loop") + ", " +
                 std::to_string(features) + " features, k=3");
}
BENCHMARK(BM_KNearest)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ccdb
