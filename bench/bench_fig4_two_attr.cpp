// Figure 4 of the paper: queries involving BOTH attributes.
//
// Experiments 1-A (constraint attributes) and 1-B (relational attributes)
// of §5.4: 10,000 random data rectangles, 100 random query rectangles,
// disk accesses of the joint 2-D R*-tree vs. two separate 1-D R*-trees
// plotted against query area.
//
// Expected shape (the paper's claims):
//  1. joint beats separate for both variants;
//  2. at small query areas the joint advantage is larger for constraint
//     data than for relational data;
//  3. the separate strategy's cost depends on query area (selectivity)
//     far more than the joint strategy's.

#include "bench_common.h"

namespace ccdb::bench {
namespace {

std::vector<SeriesPoint> RunExperiment(DataVariant variant) {
  WorkloadParams params;  // the paper's defaults
  auto data = GenerateDataBoxes(/*seed=*/1001, params);
  auto queries = GenerateQueryBoxes(/*seed=*/2002, params);
  StrategyPair pair(data, variant);

  std::vector<SeriesPoint> series;
  series.reserve(queries.size());
  for (const geom::Box& q : queries) {
    BoxQuery query = BoxQuery::Both(
        Rect::RoundDown(q.x_min), Rect::RoundUp(q.x_max),
        Rect::RoundDown(q.y_min), Rect::RoundUp(q.y_max));
    SeriesPoint point;
    point.x = q.Area().ToDouble();
    auto joint = pair.MeasureJoint(query);
    auto separate = pair.MeasureSeparate(query);
    point.joint = joint.reads;
    point.separate = separate.reads;
    if (joint.hits != separate.hits) {
      printf("!! strategy disagreement: %zu vs %zu hits\n", joint.hits,
             separate.hits);
    }
    series.push_back(point);
  }
  return series;
}

void Verdict(const std::vector<SeriesPoint>& constraint,
             const std::vector<SeriesPoint>& relational) {
  auto mean = [](const std::vector<SeriesPoint>& s, bool joint) {
    double total = 0;
    for (const SeriesPoint& p : s) {
      total += static_cast<double>(joint ? p.joint : p.separate);
    }
    return total / static_cast<double>(s.size());
  };
  auto small_area_ratio = [](const std::vector<SeriesPoint>& s) {
    // Mean separate/joint ratio over the smallest-area half.
    std::vector<SeriesPoint> sorted = s;
    std::sort(sorted.begin(), sorted.end(),
              [](const SeriesPoint& a, const SeriesPoint& b) {
                return a.x < b.x;
              });
    double j = 0, sep = 0;
    size_t half = sorted.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      j += static_cast<double>(sorted[i].joint);
      sep += static_cast<double>(sorted[i].separate);
    }
    return sep / j;
  };

  printf("\n== Figure 4 verdict ==\n");
  bool claim1 = mean(constraint, true) < mean(constraint, false) &&
                mean(relational, true) < mean(relational, false);
  printf("  [%s] joint beats separate for two-attribute queries on both "
         "variants\n",
         claim1 ? "PASS" : "FAIL");
  double ratio_c = small_area_ratio(constraint);
  double ratio_r = small_area_ratio(relational);
  printf("  [%s] small-area improvement larger for constraint data "
         "(%.2fx vs %.2fx)\n",
         ratio_c > ratio_r ? "PASS" : "FAIL", ratio_c, ratio_r);
}

}  // namespace
}  // namespace ccdb::bench

int main() {
  using namespace ccdb::bench;  // NOLINT
  printf("=== Figure 4: disk accesses vs query area, queries on both "
         "attributes ===\n");
  printf("(10,000 data rectangles; 100 query rectangles; paper §5.4, "
         "experiments 1-A/1-B)\n");

  auto constraint = RunExperiment(DataVariant::kConstraint);
  PrintSeries("Experiment 1-A: x, y constraint attributes", "area",
              constraint);
  auto relational = RunExperiment(DataVariant::kRelational);
  PrintSeries("Experiment 1-B: x, y relational attributes", "area",
              relational);
  Verdict(constraint, relational);
  return 0;
}
