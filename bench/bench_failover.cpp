// Failover-layer performance: what resilience costs when nothing fails,
// and what it buys when things do.
//
// Phase 1 — promotion time: a continuously-syncing replica follows a
// leader through a write burst; the leader dies; measures the wall time
// of Replica::Promote() — the final drain attempt against the dead
// leader, reopening the shipped image writable (fresh WAL), and the
// service store swap. Reported per run plus the mean.
//
// Phase 2 — retry-layer overhead: the same read-only script workload
// over one connection, raw net::Client vs ResilientClient, fault-free.
// The wrapper's cost is a mutex acquisition, a request-id mint, and a
// deadline computation per call; the acceptance bar is <= 3% in qps.
//
// Phase 3 — recovered throughput under loss: a ResilientClient whose
// every connection drops 10% of outgoing frames (drop_every = 10) with a
// bounded recv wait. Every query still completes — via timeout,
// reconnect, and idempotent retry — and the surviving qps is reported
// next to the fault-free figure.
//
// With --json each result is one machine-readable line (bench_common.h),
// recorded in CI as BENCH_failover.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_failover";
constexpr size_t kDataBoxes = 300;
constexpr size_t kQueries = 400;
constexpr int kPromotionRuns = 5;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

/// The bench_net read-only shapes, varied per query to defeat the cache.
std::string ScriptFor(size_t q) {
  const size_t i = q * 7919;
  const int lo = static_cast<int>((i * 157) % 2400);
  const int lo2 = static_cast<int>((i * 311 + 500) % 2400);
  switch (i % 3) {
    case 0:
      return "R0 = select x >= " + std::to_string(lo) +
             ", x <= " + std::to_string(lo + 400) +
             " from Boxes\nR1 = project R0 on y";
    case 1:
      return "R0 = select y >= " + std::to_string(lo) +
             ", y <= " + std::to_string(lo + 300) + " from Boxes";
    default:
      return "R0 = select x >= " + std::to_string(lo) +
             ", x <= " + std::to_string(lo + 150) +
             " from Boxes\nR1 = select y >= " + std::to_string(lo2) +
             ", y <= " + std::to_string(lo2 + 150) +
             " from Boxes\nR2 = join R0 and R1";
  }
}

/// An in-process leader (durable service + wire server), fresh per use.
struct Leader {
  Database db;
  PageManager disk;
  std::unique_ptr<DurableStore> store;
  std::unique_ptr<service::QueryService> service;
  std::unique_ptr<net::Server> server;
};

std::unique_ptr<Leader> StartLeader() {
  auto leader = std::make_unique<Leader>();
  Status created = leader->db.Create("Boxes", BoxRelation(kDataBoxes, 7));
  if (!created.ok()) {
    std::fprintf(stderr, "setup: %s\n", created.ToString().c_str());
    return nullptr;
  }
  auto store = DurableStore::Create(&leader->disk);
  if (!store.ok()) {
    std::fprintf(stderr, "setup: %s\n", store.status().ToString().c_str());
    return nullptr;
  }
  leader->store = std::move(*store);
  Status committed = leader->store->CommitCatalog(leader->db);
  if (!committed.ok()) {
    std::fprintf(stderr, "setup: %s\n", committed.ToString().c_str());
    return nullptr;
  }
  service::ServiceOptions options;
  options.num_workers = 4;
  options.disk = &leader->disk;
  options.store = leader->store.get();
  leader->service =
      std::make_unique<service::QueryService>(&leader->db, options);
  net::ServerOptions sopts;
  sopts.store = leader->store.get();
  auto server = net::Server::Start(leader->service.get(), sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "setup: %s\n", server.status().ToString().c_str());
    return nullptr;
  }
  leader->server = std::move(*server);
  return leader;
}

// --- Phase 1: promotion time ------------------------------------------------

bool MeasurePromotion() {
  double sum_ms = 0;
  double max_ms = 0;
  for (int run = 0; run < kPromotionRuns; ++run) {
    auto leader = StartLeader();
    if (leader == nullptr) return false;
    Database follower_db;
    service::QueryService follower(&follower_db);
    net::ReplicaOptions ropts;
    ropts.poll_interval_ms = 1;
    auto replica = net::Replica::Start("127.0.0.1", leader->server->port(),
                                       &follower, ropts);
    if (!replica.ok()) {
      std::fprintf(stderr, "replica: %s\n",
                   replica.status().ToString().c_str());
      return false;
    }
    // A burst of committed batches for the replica to have followed.
    for (int j = 0; j < 20; ++j) {
      Status written = leader->service->ReplaceRelation(
          "Boxes", BoxRelation(40, 100 + static_cast<uint64_t>(j)));
      if (!written.ok()) {
        std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
        return false;
      }
    }
    Status caught = (*replica)->WaitCaughtUp(10000);
    if (!caught.ok()) {
      std::fprintf(stderr, "catch-up: %s\n", caught.ToString().c_str());
      return false;
    }
    leader->server->Shutdown();  // the leader dies

    const double start = NowUs();
    auto promoted = (*replica)->Promote();
    const double ms = (NowUs() - start) / 1e3;
    if (!promoted.ok()) {
      std::fprintf(stderr, "promote: %s\n",
                   promoted.status().ToString().c_str());
      return false;
    }
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
    EmitResult(kBench, "promotion_time", ms, "ms",
               {{"run", static_cast<double>(run)}});
    (*replica)->Stop();
  }
  EmitResult(kBench, "promotion_time_mean", sum_ms / kPromotionRuns, "ms");
  EmitResult(kBench, "promotion_time_max", max_ms, "ms");
  return true;
}

// --- Phases 2 + 3: retry-layer overhead and recovered throughput ------------

/// Runs the workload through `execute`; returns qps, or 0 on failure.
template <typename ExecuteFn>
double MeasureQps(ExecuteFn&& execute) {
  const double start = NowUs();
  for (size_t q = 0; q < kQueries; ++q) {
    auto result = execute(ScriptFor(q));
    if (!result.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", q,
                   result.status().ToString().c_str());
      return 0;
    }
  }
  return static_cast<double>(kQueries) / ((NowUs() - start) / 1e6);
}

bool MeasureOverheadAndRecovery(uint16_t port) {
  auto raw = net::Client::Connect("127.0.0.1", port);
  if (!raw.ok()) {
    std::fprintf(stderr, "raw connect: %s\n",
                 raw.status().ToString().c_str());
    return false;
  }
  const double raw_qps =
      MeasureQps([&](const std::string& s) { return (*raw)->Execute(s); });
  if (raw_qps == 0) return false;

  net::ResilientClientOptions ropts;
  ropts.deadline_ms = 10000;
  auto resilient = net::ResilientClient::Connect("127.0.0.1", port, ropts);
  if (!resilient.ok()) {
    std::fprintf(stderr, "resilient connect: %s\n",
                 resilient.status().ToString().c_str());
    return false;
  }
  const double resilient_qps = MeasureQps(
      [&](const std::string& s) { return (*resilient)->Execute(s); });
  if (resilient_qps == 0) return false;

  const double overhead_pct = 100.0 * (raw_qps - resilient_qps) / raw_qps;
  EmitResult(kBench, "raw_qps", raw_qps, "qps");
  EmitResult(kBench, "resilient_qps", resilient_qps, "qps");
  EmitResult(kBench, "retry_overhead", overhead_pct, "%");

  // 10% of outgoing frames vanish; the bounded recv wait turns each loss
  // into a reconnect + idempotent retry, and every query still completes.
  net::ResilientClientOptions lossy_opts;
  lossy_opts.deadline_ms = 10000;
  lossy_opts.socket_faults.drop_every = 10;
  lossy_opts.recv_timeout_ms = 40;
  auto lossy = net::ResilientClient::Connect("127.0.0.1", port, lossy_opts);
  if (!lossy.ok()) {
    std::fprintf(stderr, "lossy connect: %s\n",
                 lossy.status().ToString().c_str());
    return false;
  }
  const double lossy_qps =
      MeasureQps([&](const std::string& s) { return (*lossy)->Execute(s); });
  if (lossy_qps == 0) return false;
  EmitResult(kBench, "recovered_qps_drop10", lossy_qps, "qps",
             {{"drop_every", 10}, {"recv_timeout_ms", 40}});
  EmitResult(kBench, "lossy_reconnects",
             static_cast<double>((*lossy)->reconnects()), "count");
  EmitResult(kBench, "lossy_retried_calls",
             static_cast<double>((*lossy)->retried_calls()), "count");
  return true;
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  if (!JsonOutputEnabled()) {
    std::printf("bench_failover: promotion time, retry-layer overhead, "
                "recovered qps under 10%% frame drop\n");
  }
  if (!MeasurePromotion()) return 1;
  auto leader = StartLeader();
  if (leader == nullptr) return 1;
  if (!MeasureOverheadAndRecovery(leader->server->port())) return 1;
  leader->server->Shutdown();
  return 0;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) { return ccdb::bench::Main(argc, argv); }
