// Write-ahead-log throughput and recovery cost.
//
// Measures the durability subsystem (`storage/wal.h`):
//   1. commit throughput (commits/s and log MB/s) of `DurableStore::
//      CommitCatalog` as the catalog grows — ablated over relation size;
//   2. the checkpoint-interval ablation: frequent truncation keeps the log
//      chain short at the cost of extra header/zeroing writes;
//   3. recovery: wall-clock time for `DurableStore::Open` to replay N
//      committed batches after a simulated crash.
//
// With --json each result is one machine-readable line (see
// bench_common.h), recorded in CI as the BENCH_* trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_wal";

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct CommitRun {
  double commits_per_sec = 0;
  double log_mb_per_sec = 0;
  double log_pages = 0;
  double fsyncs = 0;
};

/// `commits` catalog commits, each replacing one relation of `boxes`
/// boxes; checkpoints every `checkpoint_every` commits (0 = never).
CommitRun RunCommits(size_t boxes, int commits, int checkpoint_every) {
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return {};
  }
  Database db;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < commits; ++i) {
    db.CreateOrReplace("R", BoxRelation(boxes, static_cast<uint64_t>(i + 1)));
    Status committed = (*store)->CommitCatalog(db);
    if (!committed.ok()) {
      std::fprintf(stderr, "%s\n", committed.ToString().c_str());
      return {};
    }
    if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) {
      Status ckpt = (*store)->Checkpoint();
      if (!ckpt.ok()) {
        std::fprintf(stderr, "%s\n", ckpt.ToString().c_str());
        return {};
      }
    }
  }
  const double seconds = SecondsSince(start);
  WalStats stats = (*store)->stats();
  CommitRun out;
  out.commits_per_sec = commits / seconds;
  out.log_mb_per_sec =
      static_cast<double>(stats.bytes_appended) / (1024.0 * 1024.0) / seconds;
  out.log_pages = static_cast<double>((*store)->stats().bytes_appended /
                                      WriteAheadLog::kPayloadSize);
  out.fsyncs = static_cast<double>(stats.fsyncs);
  return out;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) {
  using namespace ccdb;         // NOLINT: benchmark brevity
  using namespace ccdb::bench;  // NOLINT
  ParseBenchFlags(argc, argv);

  constexpr int kCommits = 40;

  if (!JsonOutputEnabled()) {
    std::printf("WAL commit throughput — %d catalog commits per config\n",
                kCommits);
  }

  // 1. Commit throughput vs relation size (checkpointing off).
  for (size_t boxes : {8u, 32u, 128u}) {
    CommitRun r = RunCommits(boxes, kCommits, /*checkpoint_every=*/0);
    const std::string name = "commit_throughput_b" + std::to_string(boxes);
    EmitResult(kBench, name.c_str(), r.commits_per_sec, "commits/s",
               {{"boxes", static_cast<double>(boxes)},
                {"log_mb_per_sec", r.log_mb_per_sec},
                {"fsyncs", r.fsyncs}});
  }

  // 2. Checkpoint-interval ablation at a fixed relation size.
  for (int every : {0, 4, 16}) {
    CommitRun r = RunCommits(/*boxes=*/32, kCommits, every);
    const std::string name =
        every == 0 ? std::string("checkpoint_never")
                   : "checkpoint_every_" + std::to_string(every);
    EmitResult(kBench, name.c_str(), r.commits_per_sec, "commits/s",
               {{"checkpoint_every", static_cast<double>(every)},
                {"log_mb_per_sec", r.log_mb_per_sec}});
  }

  // 3. Recovery: replay N batches at open.
  for (int batches : {10, 40}) {
    PageManager disk;
    auto store = DurableStore::Create(&disk);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    Database db;
    for (int i = 0; i < batches; ++i) {
      db.CreateOrReplace("R" + std::to_string(i % 4),
                         BoxRelation(32, static_cast<uint64_t>(i + 1)));
      Status committed = (*store)->CommitCatalog(db);
      if (!committed.ok()) {
        std::fprintf(stderr, "%s\n", committed.ToString().c_str());
        return 1;
      }
    }
    const PageId root = (*store)->wal_root();
    const auto start = std::chrono::steady_clock::now();
    auto reopened = DurableStore::Open(&disk, root);
    const double seconds = SecondsSince(start);
    if (!reopened.ok()) {
      std::fprintf(stderr, "%s\n", reopened.status().ToString().c_str());
      return 1;
    }
    const std::string name = "recovery_time_n" + std::to_string(batches);
    EmitResult(
        kBench, name.c_str(), seconds * 1e3, "ms",
        {{"batches",
          static_cast<double>((*reopened)->stats().batches_recovered)},
         {"batches_per_sec", seconds > 0 ? batches / seconds : 0}});
  }
  return 0;
}
