#ifndef CCDB_BENCH_BENCH_COMMON_H_
#define CCDB_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared harness for the §5.4 indexing experiments.
///
/// Methodology (matching the paper and the classic R*-tree evaluation
/// setup):
///  - data and query rectangles come from `data/workload.h` with the
///    paper's parameters (10,000 data boxes, 100 or 500 queries, coords in
///    [0,3000], extents in [1,100]), regenerated from fixed seeds;
///  - each strategy's index lives on its own simulated disk with no buffer
///    cache, so a query's *disk accesses* = R*-tree pages touched;
///  - the joint strategy searches one 2-D tree (an unqueried attribute is
///    widened to the domain, §5.4); the separate strategy searches both
///    1-D trees and intersects, paying the sum of the two searches.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ccdb.h"

namespace ccdb::bench {

// --- Machine-readable output (--json) ---------------------------------------------
//
// Every non-gbench harness accepts a `--json` flag. With it, results are
// emitted via `EmitResult` as one JSON object per line —
//   {"bench":"bench_service","name":"throughput_w4","value":123.4,
//    "unit":"qps","params":{"workers":4}}
// — so CI can append them to the BENCH_*.json trajectory files without
// scraping tables.

/// Whether --json output is on (set by ParseBenchFlags).
inline bool& JsonOutputEnabled() {
  static bool enabled = false;
  return enabled;
}

/// Scans argv for benchmark-harness flags (currently just --json).
inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) JsonOutputEnabled() = true;
  }
}

/// One (key, numeric value) parameter attached to a result.
struct BenchParam {
  const char* key;
  double value;
};

/// Reports one measured result. In --json mode prints a single JSON line;
/// otherwise a human-readable one.
inline void EmitResult(const char* bench, const char* name, double value,
                       const char* unit,
                       const std::vector<BenchParam>& params = {}) {
  if (JsonOutputEnabled()) {
    std::string line = "{\"bench\":\"";
    line += bench;
    line += "\",\"name\":\"";
    line += name;
    line += "\",\"value\":";
    char num[64];
    std::snprintf(num, sizeof(num), "%.6g", value);
    line += num;
    line += ",\"unit\":\"";
    line += unit;
    line += "\"";
    if (!params.empty()) {
      line += ",\"params\":{";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i) line += ',';
        line += '"';
        line += params[i].key;
        line += "\":";
        std::snprintf(num, sizeof(num), "%.6g", params[i].value);
        line += num;
      }
      line += '}';
    }
    line += '}';
    std::printf("%s\n", line.c_str());
  } else {
    std::printf("  %-28s %12.4g %s", name, value, unit);
    for (const BenchParam& p : params) {
      std::printf("  [%s=%g]", p.key, p.value);
    }
    std::printf("\n");
  }
}

/// The experiment domain: data coords in [0,3000], extents up to 100.
inline Rect Domain() { return Rect::Make2D(-10, 3110, -10, 3110); }

/// How a data box is turned into an index key.
enum class DataVariant {
  kConstraint,  ///< x, y constraint attributes: key = the box itself
  kRelational,  ///< x, y relational attributes: key = the center point
  kMixed,       ///< x constraint, y relational: x-range x center-y point
};

inline Rect KeyFor(const geom::Box& box, DataVariant variant) {
  const double x_lo = Rect::RoundDown(box.x_min);
  const double x_hi = Rect::RoundUp(box.x_max);
  const double y_lo = Rect::RoundDown(box.y_min);
  const double y_hi = Rect::RoundUp(box.y_max);
  switch (variant) {
    case DataVariant::kConstraint:
      return Rect::Make2D(x_lo, x_hi, y_lo, y_hi);
    case DataVariant::kRelational: {
      geom::Point c = box.Center();
      double cx = c.x.ToDouble();
      double cy = c.y.ToDouble();
      return Rect::Make2D(cx, cx, cy, cy);
    }
    case DataVariant::kMixed: {
      double cy = box.Center().y.ToDouble();
      return Rect::Make2D(x_lo, x_hi, cy, cy);
    }
  }
  return Rect::Make2D(0, 0, 0, 0);
}

/// Both strategies over the same data, each on its own counted disk.
class StrategyPair {
 public:
  StrategyPair(const std::vector<geom::Box>& boxes, DataVariant variant)
      : joint_pool_(&joint_disk_, 0),
        separate_pool_(&separate_disk_, 0),
        joint_(&joint_pool_, Domain()),
        separate_(&separate_pool_) {
    for (uint64_t i = 0; i < boxes.size(); ++i) {
      Rect key = KeyFor(boxes[i], variant);
      Status s1 = joint_.Insert(key, i);
      Status s2 = separate_.Insert(key, i);
      (void)s1;
      (void)s2;
    }
  }

  /// Runs one query against a strategy; returns {disk reads, result count}.
  struct Cost {
    uint64_t reads = 0;
    size_t hits = 0;
  };

  Cost MeasureJoint(const BoxQuery& query) {
    joint_disk_.ResetStats();
    auto hits = joint_.Search(query);
    return Cost{joint_disk_.stats().reads, hits.ok() ? hits->size() : 0};
  }

  Cost MeasureSeparate(const BoxQuery& query) {
    separate_disk_.ResetStats();
    auto hits = separate_.Search(query);
    return Cost{separate_disk_.stats().reads, hits.ok() ? hits->size() : 0};
  }

  JointIndex& joint() { return joint_; }
  SeparateIndex& separate() { return separate_; }

 private:
  PageManager joint_disk_;
  PageManager separate_disk_;
  BufferPool joint_pool_;
  BufferPool separate_pool_;
  JointIndex joint_;
  SeparateIndex separate_;
};

/// One measured point of a figure's series.
struct SeriesPoint {
  double x = 0;  ///< query area (fig. 4) or query length (fig. 5)
  uint64_t joint = 0;
  uint64_t separate = 0;
};

/// Prints the full scatter (the figure's data) followed by a bucketed
/// summary, mean ratio, and a least-squares slope of accesses vs. x for
/// each strategy (the paper's "depends on selectivity a lot less" claim).
inline void PrintSeries(const char* title, const char* x_label,
                        std::vector<SeriesPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const SeriesPoint& a, const SeriesPoint& b) {
              return a.x < b.x;
            });
  printf("\n%s\n", title);
  printf("  %-14s %14s %17s\n", x_label, "joint accesses",
         "separate accesses");
  for (const SeriesPoint& p : points) {
    printf("  %-14.0f %14llu %17llu\n", p.x,
           static_cast<unsigned long long>(p.joint),
           static_cast<unsigned long long>(p.separate));
  }

  const size_t buckets = 5;
  printf("  -- bucketed means (%zu buckets by %s) --\n", buckets, x_label);
  size_t per = (points.size() + buckets - 1) / buckets;
  for (size_t b = 0; b < buckets && b * per < points.size(); ++b) {
    size_t lo = b * per;
    size_t hi = std::min(points.size(), lo + per);
    double jx = 0, sx = 0, xx = 0;
    for (size_t i = lo; i < hi; ++i) {
      jx += static_cast<double>(points[i].joint);
      sx += static_cast<double>(points[i].separate);
      xx += points[i].x;
    }
    double n = static_cast<double>(hi - lo);
    printf("  %s ~%-10.0f joint %8.1f   separate %8.1f\n", x_label, xx / n,
           jx / n, sx / n);
  }

  double mean_j = 0, mean_s = 0, mean_x = 0;
  for (const SeriesPoint& p : points) {
    mean_j += static_cast<double>(p.joint);
    mean_s += static_cast<double>(p.separate);
    mean_x += p.x;
  }
  const double n = static_cast<double>(points.size());
  mean_j /= n;
  mean_s /= n;
  mean_x /= n;
  double num_j = 0, num_s = 0, den = 0;
  for (const SeriesPoint& p : points) {
    double dx = p.x - mean_x;
    num_j += dx * (static_cast<double>(p.joint) - mean_j);
    num_s += dx * (static_cast<double>(p.separate) - mean_s);
    den += dx * dx;
  }
  printf("  -- summary --\n");
  printf("  mean accesses:   joint %.1f, separate %.1f (ratio %.2fx)\n",
         mean_j, mean_s, mean_s / mean_j);
  printf("  slope vs %s: joint %.4f, separate %.4f\n", x_label,
         den > 0 ? num_j / den : 0.0, den > 0 ? num_s / den : 0.0);
}

}  // namespace ccdb::bench

#endif  // CCDB_BENCH_BENCH_COMMON_H_
