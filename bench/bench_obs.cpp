// Cost of the observability surfaces.
//
// Phase 1 — scrape cost: an in-process leader (durable QueryService +
// net::Server) runs the experiment-2 join workload to occupy every
// counter and histogram, then we time a full Prometheus scrape —
// MergedSnapshot() of the service+net registries plus text rendering —
// exactly what one GET /metrics on the status listener pays.
//
// Phase 2 — traced-over-wire overhead: the same 12 experiment-2 join
// queries over a loopback net::Client in three modes:
//   wire_plain        Execute, no trace id;
//   wire_traced       Execute with a client-assigned trace_id stamped on
//                     every request (the propagation cost every traced
//                     fleet query pays) — design target ≤5% overhead;
//   wire_fetch_trace  FETCH_TRACE — full per-operator span tree built
//                     server-side and shipped back structured.
//
// With --json each result is one machine-readable line (bench_common.h),
// recorded in CI as BENCH_obs.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_obs";
constexpr size_t kQueries = 12;
constexpr int kRounds = 7;
constexpr int kScrapeIters = 200;

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One experiment-2 join script: boxes overlapping an x-band joined with
/// boxes overlapping a y-band (same bands bench_trace uses).
std::string JoinScript(size_t i) {
  const int x_lo = static_cast<int>((i * 157) % 2400);
  const int y_lo = static_cast<int>((i * 311 + 500) % 2400);
  return "R0 = select x >= " + std::to_string(x_lo) + ", x <= " +
         std::to_string(x_lo + 250) + " from Boxes\n" +
         "R1 = select y >= " + std::to_string(y_lo) + ", y <= " +
         std::to_string(y_lo + 250) + " from Boxes\n" +
         "R2 = join R0 and R1";
}

enum class Mode { kPlain, kTraced, kFetchTrace };

/// Total wall seconds to run every script once over the wire in `mode`.
double RunWire(net::Client* client, const std::vector<std::string>& scripts,
               Mode mode, bool* ok) {
  const double start = NowS();
  uint64_t trace_id = 0x0b5eab1e;
  for (const std::string& script : scripts) {
    Status status = Status::OK();
    switch (mode) {
      case Mode::kPlain:
        status = client->Execute(script).status();
        break;
      case Mode::kTraced: {
        service::QueryOptions opts;
        opts.trace_id = ++trace_id;
        status = client->Execute(script, opts).status();
        break;
      }
      case Mode::kFetchTrace:
        status = client->FetchTrace(script, ++trace_id).status();
        break;
    }
    if (!status.ok()) {
      std::fprintf(stderr, "wire query failed: %s\n",
                   status.ToString().c_str());
      *ok = false;
    }
  }
  return NowS() - start;
}

int Main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);

  // The leader: 250-box database, durable store, service, wire server.
  WorkloadParams params;
  params.data_count = 250;
  Database db;
  Status created = db.Create(
      "Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)));
  if (!created.ok()) {
    std::fprintf(stderr, "setup: %s\n", created.ToString().c_str());
    return 1;
  }
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::fprintf(stderr, "setup: %s\n", store.status().ToString().c_str());
    return 1;
  }
  Status committed = (*store)->CommitCatalog(db);
  if (!committed.ok()) {
    std::fprintf(stderr, "setup: %s\n", committed.ToString().c_str());
    return 1;
  }
  service::ServiceOptions options;
  options.num_workers = 2;
  options.disk = &disk;
  options.store = store->get();
  options.cache_capacity = 0;  // measure execution, not cache hits
  service::QueryService service(&db, options);
  net::ServerOptions sopts;
  sopts.store = store->get();
  auto server = net::Server::Start(&service, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "setup: %s\n", server.status().ToString().c_str());
    return 1;
  }
  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "setup: %s\n", client.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> scripts;
  for (size_t i = 0; i < kQueries; ++i) scripts.push_back(JoinScript(i));

  if (!JsonOutputEnabled()) {
    std::printf("Observability cost — %zu experiment-2 join queries over "
                "%zu data boxes, best of %d rounds\n",
                kQueries, params.data_count, kRounds);
  }

  // Warm-up (pages in code and data, occupies every hot counter and the
  // latency histogram before the scrape is timed; not measured).
  bool ok = true;
  (void)RunWire(client->get(), scripts, Mode::kPlain, &ok);
  if (!ok) return 1;

  // --- Phase 1: scrape cost --------------------------------------------
  // One scrape = merged service+net snapshot + Prometheus text rendering,
  // i.e. the body of one GET /metrics.
  size_t body_bytes = 0;
  const double scrape_start = NowS();
  for (int i = 0; i < kScrapeIters; ++i) {
    const std::string body =
        obs::RenderPrometheus((*server)->MergedSnapshot()) +
        obs::RenderBuildInfo();
    body_bytes = body.size();
  }
  const double us_per_scrape =
      (NowS() - scrape_start) * 1e6 / static_cast<double>(kScrapeIters);
  EmitResult(kBench, "scrape_render", us_per_scrape, "us/scrape",
             {{"bytes", static_cast<double>(body_bytes)}});

  // --- Phase 2: traced-over-wire overhead ------------------------------
  // Best-of-N per mode, interleaved so drift hits all modes alike.
  double best_plain = 0, best_traced = 0, best_fetch = 0;
  for (int round = 0; round < kRounds; ++round) {
    const double plain = RunWire(client->get(), scripts, Mode::kPlain, &ok);
    const double traced = RunWire(client->get(), scripts, Mode::kTraced, &ok);
    const double fetch =
        RunWire(client->get(), scripts, Mode::kFetchTrace, &ok);
    if (!ok) return 1;
    if (round == 0 || plain < best_plain) best_plain = plain;
    if (round == 0 || traced < best_traced) best_traced = traced;
    if (round == 0 || fetch < best_fetch) best_fetch = fetch;
  }

  const double per_query = 1e6 / static_cast<double>(kQueries);
  const double traced_pct = 100.0 * (best_traced - best_plain) / best_plain;
  const double fetch_pct = 100.0 * (best_fetch - best_plain) / best_plain;
  EmitResult(kBench, "wire_plain", best_plain * per_query, "us/query",
             {{"queries", static_cast<double>(kQueries)}});
  EmitResult(kBench, "wire_traced", best_traced * per_query, "us/query",
             {{"overhead_pct", traced_pct}});
  EmitResult(kBench, "wire_fetch_trace", best_fetch * per_query, "us/query",
             {{"overhead_pct", fetch_pct}});

  client->get()->Close();
  (*server)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) { return ccdb::bench::Main(argc, argv); }
