// Experiment 3 of §5.4: the 500-query run.
//
// The available text of the paper truncates experiment 3's description
// ("For experiment 3, generate 500 queries" is all that survives). CCDB's
// documented assumption (DESIGN.md): experiment 3 exercises the
// *heterogeneous* relation — x a constraint attribute (the rectangle's
// x-extent), y a relational attribute (a point value) — with 500 query
// rectangles over both attributes, completing the 1-A/1-B axis with the
// mixed case that §3's heterogeneous data model motivates.

#include "bench_common.h"

int main() {
  using namespace ccdb::bench;  // NOLINT
  using namespace ccdb;        // NOLINT
  printf("=== Experiment 3: heterogeneous relation, 500 queries ===\n");
  printf("(x constraint, y relational; 10,000 data tuples; paper §5.4; "
         "see DESIGN.md for the\n truncated-description assumption)\n");

  WorkloadParams params;
  params.query_count = 500;  // the paper's stated count for experiment 3
  auto data = GenerateDataBoxes(/*seed=*/1001, params);
  auto queries = GenerateQueryBoxes(/*seed=*/3003, params);
  StrategyPair pair(data, DataVariant::kMixed);

  std::vector<SeriesPoint> series;
  series.reserve(queries.size());
  for (const geom::Box& q : queries) {
    BoxQuery query = BoxQuery::Both(
        Rect::RoundDown(q.x_min), Rect::RoundUp(q.x_max),
        Rect::RoundDown(q.y_min), Rect::RoundUp(q.y_max));
    SeriesPoint point;
    point.x = q.Area().ToDouble();
    auto joint = pair.MeasureJoint(query);
    auto separate = pair.MeasureSeparate(query);
    point.joint = joint.reads;
    point.separate = separate.reads;
    if (joint.hits != separate.hits) {
      printf("!! strategy disagreement: %zu vs %zu hits\n", joint.hits,
             separate.hits);
    }
    series.push_back(point);
  }
  PrintSeries("Experiment 3: x constraint / y relational, 500 queries",
              "area", series);

  double j = 0, s = 0;
  for (const SeriesPoint& p : series) {
    j += static_cast<double>(p.joint);
    s += static_cast<double>(p.separate);
  }
  printf("\n== Experiment 3 verdict ==\n");
  printf("  [%s] joint beats separate on the heterogeneous relation "
         "(ratio %.2fx)\n",
         j < s ? "PASS" : "FAIL", s / j);
  return 0;
}
