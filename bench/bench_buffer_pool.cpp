// Ablation: buffer-pool sensitivity of the §5.4 workload.
//
// The paper's experiments count raw disk accesses (no cache); a deployed
// system runs with a buffer pool. This bench replays the Figure 4
// conjunctive workload through LRU pools of growing capacity and reports
// actual disk reads and hit rates — showing how much of the joint-index
// advantage survives caching (upper tree levels cache quickly; the
// separate strategy's larger leaf footprint keeps missing).

#include "bench_common.h"

int main() {
  using namespace ccdb::bench;  // NOLINT
  using namespace ccdb;        // NOLINT
  printf("=== Buffer-pool sensitivity (Figure 4 workload) ===\n");
  printf("(10,000 data rectangles; 100 conjunctive queries; LRU, "
         "write-through)\n\n");

  WorkloadParams params;
  auto data = GenerateDataBoxes(1001, params);
  auto queries = GenerateQueryBoxes(2002, params);

  printf("  %-12s %18s %18s %14s %14s\n", "pool pages", "joint disk reads",
         "sep. disk reads", "joint hit %", "sep. hit %");
  for (size_t capacity : {0u, 4u, 16u, 64u, 256u}) {
    PageManager joint_disk, sep_disk;
    BufferPool joint_pool(&joint_disk, capacity);
    BufferPool sep_pool(&sep_disk, capacity);
    JointIndex joint(&joint_pool, Domain());
    SeparateIndex separate(&sep_pool);
    for (uint64_t i = 0; i < data.size(); ++i) {
      Rect key = KeyFor(data[i], DataVariant::kConstraint);
      (void)joint.Insert(key, i);
      (void)separate.Insert(key, i);
    }
    joint_disk.ResetStats();
    sep_disk.ResetStats();
    joint_pool.ResetStats();
    sep_pool.ResetStats();
    for (const geom::Box& q : queries) {
      BoxQuery query = BoxQuery::Both(
          Rect::RoundDown(q.x_min), Rect::RoundUp(q.x_max),
          Rect::RoundDown(q.y_min), Rect::RoundUp(q.y_max));
      (void)joint.Search(query);
      (void)separate.Search(query);
    }
    auto hit_rate = [](const CacheStats& s) {
      uint64_t total = s.hits + s.misses;
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(s.hits) /
                              static_cast<double>(total);
    };
    printf("  %-12zu %18llu %18llu %13.1f%% %13.1f%%\n", capacity,
           static_cast<unsigned long long>(joint_disk.stats().reads),
           static_cast<unsigned long long>(sep_disk.stats().reads),
           hit_rate(joint_pool.stats()), hit_rate(sep_pool.stats()));
  }
  printf("\nNote: with a pool big enough to hold the whole index, both "
         "strategies read\nzero pages after warm-up — the paper's uncached "
         "counts measure the structural\nadvantage that matters below that "
         "threshold.\n");
  return 0;
}
