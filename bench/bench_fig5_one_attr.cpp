// Figure 5 of the paper: queries involving ONE attribute.
//
// Experiments 2-A (constraint attributes) and 2-B (relational attributes)
// of §5.4: the same 10,000 data rectangles, but each query constrains a
// single attribute. The joint index must widen the other attribute to the
// whole domain; the separate strategy searches only the relevant 1-D tree.
//
// Expected shape (the paper's claims): separate wins, but by less than
// joint wins in Figure 4.

#include "bench_common.h"

namespace ccdb::bench {
namespace {

std::vector<SeriesPoint> RunExperiment(DataVariant variant) {
  WorkloadParams params;
  auto data = GenerateDataBoxes(/*seed=*/1001, params);
  auto queries = GenerateQueryBoxes(/*seed=*/2002, params);
  StrategyPair pair(data, variant);

  std::vector<SeriesPoint> series;
  // Each query rectangle contributes two one-attribute queries: its
  // x-range (an x-only query) and its y-range (a y-only query), plotted
  // against the query length.
  for (const geom::Box& q : queries) {
    for (int axis = 0; axis < 2; ++axis) {
      BoxQuery query =
          axis == 0
              ? BoxQuery::XOnly(Rect::RoundDown(q.x_min),
                                Rect::RoundUp(q.x_max))
              : BoxQuery::YOnly(Rect::RoundDown(q.y_min),
                                Rect::RoundUp(q.y_max));
      SeriesPoint point;
      point.x = (axis == 0 ? q.Width() : q.Height()).ToDouble();
      auto joint = pair.MeasureJoint(query);
      auto separate = pair.MeasureSeparate(query);
      point.joint = joint.reads;
      point.separate = separate.reads;
      if (joint.hits != separate.hits) {
        printf("!! strategy disagreement: %zu vs %zu hits\n", joint.hits,
               separate.hits);
      }
      series.push_back(point);
    }
  }
  return series;
}

double MeanRatioSeparateOverJoint(const std::vector<SeriesPoint>& s) {
  double j = 0, sep = 0;
  for (const SeriesPoint& p : s) {
    j += static_cast<double>(p.joint);
    sep += static_cast<double>(p.separate);
  }
  return sep / j;
}

}  // namespace
}  // namespace ccdb::bench

int main() {
  using namespace ccdb::bench;  // NOLINT
  printf("=== Figure 5: disk accesses vs query length, queries on one "
         "attribute ===\n");
  printf("(10,000 data rectangles; 100 query rectangles x 2 axes; paper "
         "§5.4, experiments 2-A/2-B)\n");

  auto constraint = RunExperiment(DataVariant::kConstraint);
  PrintSeries("Experiment 2-A: x, y constraint attributes", "length",
              constraint);
  auto relational = RunExperiment(DataVariant::kRelational);
  PrintSeries("Experiment 2-B: x, y relational attributes", "length",
              relational);

  printf("\n== Figure 5 verdict ==\n");
  double rc = MeanRatioSeparateOverJoint(constraint);
  double rr = MeanRatioSeparateOverJoint(relational);
  printf("  [%s] separate wins one-attribute queries on constraint data "
         "(sep/joint = %.2f < 1)\n",
         rc < 1.0 ? "PASS" : "FAIL", rc);
  printf("  [%s] separate wins one-attribute queries on relational data "
         "(sep/joint = %.2f < 1)\n",
         rr < 1.0 ? "PASS" : "FAIL", rr);
  printf("  note: the paper finds this advantage \"not as significant as "
         "the advantage of\n  joint indices when queries use both "
         "attributes\" — compare with Figure 4's ratio.\n");
  return 0;
}
