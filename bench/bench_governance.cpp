// Overhead and trip latency of resource governance.
//
// Runs the paper's experiment-2 style join workload (selections on x and y
// over the §5.4 box data, then a natural join) through the plan executor in
// two modes:
//   off   plain Execute — no ExecContext installed (an ungoverned thread);
//   on    an ExecContext with generous, never-tripping limits installed —
//         the per-charge/per-check price every governed query pays.
// The design target is governed overhead under 3% on this workload.
//
// It also measures *trip latency*: an adversarial Fourier–Motzkin
// explosion query (an unselective self-join, quadratic constraint
// pairing) armed with a 50 ms deadline, reporting how far past the
// deadline the typed kDeadlineExceeded actually lands.
//
// With --stress N the harness instead runs the explosion query N times
// under the 50 ms deadline and exits non-zero if any run fails to trip
// with kDeadlineExceeded or takes more than twice the deadline — the
// adversarial loop behind tools/stress_governance.sh.
//
// With --json each result is one machine-readable line (see
// bench_common.h), recorded in CI as the BENCH_* trajectory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/governance.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_governance";
constexpr double kDeadlineUs = 50'000;  // the stress-mode wall budget

/// One compiled+optimized experiment-2 join query: boxes overlapping an
/// x-band joined with boxes overlapping a y-band.
Result<std::unique_ptr<cqa::PlanNode>> MakeJoinPlan(const Database& db,
                                                    int x_lo, int y_lo) {
  const std::string script =
      "R0 = select x >= " + std::to_string(x_lo) + ", x <= " +
      std::to_string(x_lo + 250) + " from Boxes\n" +
      "R1 = select y >= " + std::to_string(y_lo) + ", y <= " +
      std::to_string(y_lo + 250) + " from Boxes\n" +
      "R2 = join R0 and R1";
  CCDB_ASSIGN_OR_RETURN(lang::CompiledScript compiled,
                        lang::CompileScript(script, db));
  return cqa::Optimize(std::move(compiled.plan), db);
}

/// The adversarial query: unselective bands, so the join must pair
/// (almost) every box with every box — quadratic constraint explosion.
Result<std::unique_ptr<cqa::PlanNode>> MakeExplosionPlan(const Database& db) {
  const std::string script =
      "R0 = select x >= 0, x <= 3000 from Boxes\n"
      "R1 = select y >= 0, y <= 3000 from Boxes\n"
      "R2 = join R0 and R1";
  CCDB_ASSIGN_OR_RETURN(lang::CompiledScript compiled,
                        lang::CompileScript(script, db));
  return cqa::Optimize(std::move(compiled.plan), db);
}

/// Total wall seconds to execute every plan once, optionally governed.
double RunPlans(const std::vector<std::unique_ptr<cqa::PlanNode>>& plans,
                const Database& db, bool governed) {
  // Generous limits: every charge and strided check is paid, nothing
  // ever trips — this isolates the bookkeeping cost.
  obs::GovernanceLimits limits;
  limits.deadline_us = 3600e6;
  limits.max_tuples = ~0ull >> 1;
  limits.max_constraints = ~0ull >> 1;
  limits.max_memory_bytes = ~0ull >> 1;

  const auto start = std::chrono::steady_clock::now();
  for (const auto& plan : plans) {
    Result<Relation> out = Status::OK();
    if (governed) {
      obs::ExecContext ctx(limits, std::chrono::steady_clock::now());
      obs::ExecContextScope scope(&ctx);
      out = cqa::Execute(*plan, db);
    } else {
      out = cqa::Execute(*plan, db);
    }
    if (!out.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   out.status().ToString().c_str());
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One deadline-armed explosion run; returns elapsed milliseconds and
/// whether it tripped with exactly kDeadlineExceeded.
struct TripRun {
  double elapsed_ms = 0;
  bool typed_trip = false;
};

TripRun RunExplosionOnce(const cqa::PlanNode& plan, const Database& db) {
  obs::GovernanceLimits limits;
  limits.deadline_us = kDeadlineUs;
  const auto start = std::chrono::steady_clock::now();
  obs::ExecContext ctx(limits, start);
  Result<Relation> out = Status::OK();
  {
    obs::ExecContextScope scope(&ctx);
    out = cqa::Execute(plan, db);
  }
  TripRun run;
  run.elapsed_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  run.typed_trip =
      !out.ok() && out.status().code() == StatusCode::kDeadlineExceeded;
  return run;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) {
  using namespace ccdb;         // NOLINT: benchmark brevity
  using namespace ccdb::bench;  // NOLINT
  ParseBenchFlags(argc, argv);
  int stress_runs = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--stress") == 0) {
      stress_runs = std::atoi(argv[i + 1]);
    }
  }

  WorkloadParams params;
  params.data_count = 250;
  Database db;
  Status created = db.Create(
      "Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)));
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.ToString().c_str());
    return 1;
  }

  auto explosion = MakeExplosionPlan(db);
  if (!explosion.ok()) {
    std::fprintf(stderr, "%s\n", explosion.status().ToString().c_str());
    return 1;
  }

  if (stress_runs > 0) {
    // Adversarial mode: the explosion must trip with the typed status and
    // within 2x the deadline, every single time.
    const double bound_ms = 2.0 * kDeadlineUs / 1000.0;
    double worst_ms = 0;
    for (int i = 0; i < stress_runs; ++i) {
      TripRun run = RunExplosionOnce(**explosion, db);
      if (run.elapsed_ms > worst_ms) worst_ms = run.elapsed_ms;
      if (!run.typed_trip) {
        std::fprintf(stderr,
                     "stress run %d: expected kDeadlineExceeded, query "
                     "finished or failed otherwise (%.1f ms)\n",
                     i, run.elapsed_ms);
        return 1;
      }
      if (run.elapsed_ms > bound_ms) {
        std::fprintf(stderr,
                     "stress run %d: trip took %.1f ms (> %.0f ms bound)\n",
                     i, run.elapsed_ms, bound_ms);
        return 1;
      }
    }
    std::printf("stress ok: %d runs tripped kDeadlineExceeded, worst "
                "%.1f ms (bound %.0f ms)\n",
                stress_runs, worst_ms, bound_ms);
    return 0;
  }

  constexpr size_t kQueries = 12;
  std::vector<std::unique_ptr<cqa::PlanNode>> plans;
  for (size_t i = 0; i < kQueries; ++i) {
    const int x_lo = static_cast<int>((i * 157) % 2400);
    const int y_lo = static_cast<int>((i * 311 + 500) % 2400);
    auto plan = MakeJoinPlan(db, x_lo, y_lo);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(std::move(plan).value());
  }

  constexpr int kRounds = 7;
  if (!JsonOutputEnabled()) {
    std::printf("Governance overhead — %zu experiment-2 join queries over "
                "%zu data boxes, best of %d rounds\n",
                kQueries, params.data_count, kRounds);
  }

  (void)RunPlans(plans, db, /*governed=*/false);  // warm-up, not measured

  // Best-of-N per mode, interleaved so drift hits both modes alike.
  double best_off = 0, best_on = 0;
  for (int round = 0; round < kRounds; ++round) {
    const double off = RunPlans(plans, db, /*governed=*/false);
    const double on = RunPlans(plans, db, /*governed=*/true);
    if (round == 0 || off < best_off) best_off = off;
    if (round == 0 || on < best_on) best_on = on;
  }

  const double per_query = 1e6 / static_cast<double>(kQueries);
  const double overhead_pct = 100.0 * (best_on - best_off) / best_off;
  EmitResult(kBench, "governance_off", best_off * per_query, "us/query",
             {{"queries", static_cast<double>(kQueries)}});
  EmitResult(kBench, "governance_on", best_on * per_query, "us/query",
             {{"overhead_pct", overhead_pct}});

  // Trip latency: median-of-5 overshoot past the 50 ms deadline.
  std::vector<double> trips;
  for (int i = 0; i < 5; ++i) {
    TripRun run = RunExplosionOnce(**explosion, db);
    if (!run.typed_trip) {
      std::fprintf(stderr, "explosion run %d did not trip the deadline\n", i);
      return 1;
    }
    trips.push_back(run.elapsed_ms);
  }
  std::sort(trips.begin(), trips.end());
  EmitResult(kBench, "deadline_trip_ms", trips[trips.size() / 2], "ms",
             {{"deadline_ms", kDeadlineUs / 1000.0},
              {"overshoot_ms", trips[trips.size() / 2] - kDeadlineUs / 1000.0}});
  return 0;
}
