// Over-the-wire performance of the network edge.
//
// Phase 1 — client scaling: an in-process leader (durable QueryService +
// net::Server) is driven by 1/2/4/8 *separate client processes* (this
// binary re-executed in --client mode), each running a mixed read-only
// script workload over one connection. Reports end-to-end queries/second
// and the p99 round-trip latency per client count — the wire protocol's
// framing, Status transport, and thread-per-connection dispatch are all
// on the measured path.
//
// Phase 2 — replication lag: a WAL-shipping replica follows the same
// leader while it commits a continuous stream of catalog writes. Reports
// batches applied, the maximum and mean apply lag observed during the
// write storm (in committed-but-unapplied batches), and the time to
// fully catch up after the writes stop.
//
// With --json each result is one machine-readable line (bench_common.h),
// recorded in CI as BENCH_net.json.
//
// Subcommands (used by the harness itself and tools/stress_net.sh):
//   bench_net --client PORT ID QUERIES   connect to 127.0.0.1:PORT, run
//                                        QUERIES scripts, print one
//                                        latency (us) per line
//   bench_net --load PORT COUNT SEED     load a COUNT-box "Boxes"
//                                        relation into the server
//   bench_net --promote PORT             ask the replica at PORT to
//                                        promote; prints the new term

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace ccdb::bench {
namespace {

constexpr const char* kBench = "bench_net";
constexpr size_t kQueriesPerClient = 250;
constexpr size_t kDataBoxes = 300;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

/// The same mixed read-only shapes bench_service uses, varied per client
/// and per query so the result cache does not collapse the workload.
std::string ScriptFor(int client_id, size_t q) {
  const size_t i = static_cast<size_t>(client_id) * 7919 + q;
  const int lo = static_cast<int>((i * 157) % 2400);
  const int lo2 = static_cast<int>((i * 311 + 500) % 2400);
  switch (i % 3) {
    case 0:
      return "R0 = select x >= " + std::to_string(lo) +
             ", x <= " + std::to_string(lo + 400) +
             " from Boxes\nR1 = project R0 on y";
    case 1:
      return "R0 = select y >= " + std::to_string(lo) +
             ", y <= " + std::to_string(lo + 300) + " from Boxes";
    default:
      return "R0 = select x >= " + std::to_string(lo) +
             ", x <= " + std::to_string(lo + 150) +
             " from Boxes\nR1 = select y >= " + std::to_string(lo2) +
             ", y <= " + std::to_string(lo2 + 150) +
             " from Boxes\nR2 = join R0 and R1";
  }
}

// --- Subcommand: --client ---------------------------------------------------

int RunClient(uint16_t port, int client_id, size_t queries) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "client %d: connect: %s\n", client_id,
                 client.status().ToString().c_str());
    return 1;
  }
  for (size_t q = 0; q < queries; ++q) {
    const std::string script = ScriptFor(client_id, q);
    const double start = NowUs();
    auto result = (*client)->Execute(script);
    if (!result.ok()) {
      std::fprintf(stderr, "client %d: query %zu: %s\n", client_id, q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.1f\n", NowUs() - start);
  }
  return 0;
}

// --- Subcommand: --load -----------------------------------------------------

int RunLoad(uint16_t port, size_t count, uint64_t seed) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "load: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  Status loaded = (*client)->LoadRelation("Boxes", BoxRelation(count, seed));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.ToString().c_str());
    return 1;
  }
  return 0;
}

// --- Subcommand: --promote --------------------------------------------------

int RunPromote(uint16_t port) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "promote: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto term = (*client)->Promote();
  if (!term.ok()) {
    std::fprintf(stderr, "promote: %s\n", term.status().ToString().c_str());
    return 1;
  }
  std::printf("promoted to term %llu\n",
              static_cast<unsigned long long>(*term));
  return 0;
}

// --- Phase 1: client scaling ------------------------------------------------

struct ChildProc {
  pid_t pid = -1;
  int out_fd = -1;
};

/// Forks one --client child whose stdout is a pipe back to us.
bool SpawnClient(const char* exe, uint16_t port, int client_id,
                 size_t queries, ChildProc* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    char port_arg[16], id_arg[16], queries_arg[16];
    std::snprintf(port_arg, sizeof(port_arg), "%u", port);
    std::snprintf(id_arg, sizeof(id_arg), "%d", client_id);
    std::snprintf(queries_arg, sizeof(queries_arg), "%zu", queries);
    execl(exe, exe, "--client", port_arg, id_arg, queries_arg,
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(fds[1]);
  out->pid = pid;
  out->out_fd = fds[0];
  return true;
}

struct ScalingResult {
  double qps = 0;
  double p99_us = 0;
  bool ok = false;
};

ScalingResult MeasureClients(const char* exe, uint16_t port, int clients) {
  std::vector<ChildProc> children(static_cast<size_t>(clients));
  const double start = NowUs();
  for (int c = 0; c < clients; ++c) {
    if (!SpawnClient(exe, port, c, kQueriesPerClient,
                     &children[static_cast<size_t>(c)])) {
      std::fprintf(stderr, "spawn failed for client %d\n", c);
      return {};
    }
  }
  // Drain every child's latency stream. Reading sequentially is fine:
  // children run concurrently regardless, and each child's full output
  // (~2 KB) fits in its pipe buffer.
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(clients) * kQueriesPerClient);
  for (ChildProc& child : children) {
    FILE* stream = fdopen(child.out_fd, "r");
    if (stream == nullptr) return {};
    double us = 0;
    while (std::fscanf(stream, "%lf", &us) == 1) latencies.push_back(us);
    fclose(stream);
  }
  bool all_ok = true;
  for (ChildProc& child : children) {
    int status = 0;
    waitpid(child.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) all_ok = false;
  }
  const double wall_us = NowUs() - start;
  if (!all_ok ||
      latencies.size() !=
          static_cast<size_t>(clients) * kQueriesPerClient) {
    std::fprintf(stderr, "client-scaling run failed (%zu/%zu latencies)\n",
                 latencies.size(),
                 static_cast<size_t>(clients) * kQueriesPerClient);
    return {};
  }
  ScalingResult result;
  result.qps = static_cast<double>(latencies.size()) / (wall_us / 1e6);
  result.p99_us = service::NearestRankPercentile(latencies, 0.99);
  result.ok = true;
  return result;
}

// --- Phase 2: replication lag -----------------------------------------------

struct LagResult {
  uint64_t writes = 0;
  uint64_t batches_applied = 0;
  uint64_t max_lag = 0;
  double mean_lag = 0;
  double catchup_ms = 0;
  bool ok = false;
};

LagResult MeasureReplicaLag(service::QueryService* leader, uint16_t port) {
  Database follower_db;
  service::QueryService follower(&follower_db);
  net::ReplicaOptions ropts;
  ropts.poll_interval_ms = 1;
  auto replica = net::Replica::Start("127.0.0.1", port, &follower, ropts);
  if (!replica.ok()) {
    std::fprintf(stderr, "replica: %s\n", replica.status().ToString().c_str());
    return {};
  }
  Status warm = (*replica)->WaitCaughtUp(10000);
  if (!warm.ok()) {
    std::fprintf(stderr, "replica bootstrap: %s\n", warm.ToString().c_str());
    return {};
  }

  // Instantaneous apply lag = batches the leader has committed minus
  // batches the replica has applied, sampled after every commit. (The
  // replica's own `lag_batches` is as-of its last completed sync — it
  // reads 0 whenever a sync just finished, which is almost always.)
  const uint64_t base_lsn = (*replica)->stats().applied_lsn;

  // ~600 ms of continuous catalog writes; sample lag after each commit.
  LagResult result;
  double lag_sum = 0;
  uint64_t samples = 0;
  const double end = NowUs() + 600e3;
  while (NowUs() < end) {
    Status written =
        leader->ReplaceRelation("Boxes", BoxRelation(40, 1000 + result.writes));
    if (!written.ok()) {
      std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
      return {};
    }
    ++result.writes;
    const uint64_t committed = base_lsn + result.writes;
    const uint64_t applied = (*replica)->stats().applied_lsn;
    const uint64_t lag = committed > applied ? committed - applied : 0;
    result.max_lag = std::max(result.max_lag, lag);
    lag_sum += static_cast<double>(lag);
    ++samples;
  }
  const double catchup_start = NowUs();
  Status caught = (*replica)->WaitCaughtUp(30000);
  if (!caught.ok()) {
    std::fprintf(stderr, "catch-up: %s\n", caught.ToString().c_str());
    return {};
  }
  result.catchup_ms = (NowUs() - catchup_start) / 1e3;
  result.mean_lag = samples ? lag_sum / static_cast<double>(samples) : 0;
  result.batches_applied = (*replica)->stats().batches_applied;
  (*replica)->Stop();
  result.ok = true;
  return result;
}

// --- Harness ----------------------------------------------------------------

int Main(int argc, char** argv) {
  // Subcommand modes (exec'd children / stress-script helpers).
  if (argc >= 2 && std::strcmp(argv[1], "--client") == 0) {
    if (argc != 5) {
      std::fprintf(stderr, "usage: bench_net --client PORT ID QUERIES\n");
      return 2;
    }
    return RunClient(static_cast<uint16_t>(std::atoi(argv[2])),
                     std::atoi(argv[3]),
                     static_cast<size_t>(std::atol(argv[4])));
  }
  if (argc >= 2 && std::strcmp(argv[1], "--load") == 0) {
    if (argc != 5) {
      std::fprintf(stderr, "usage: bench_net --load PORT COUNT SEED\n");
      return 2;
    }
    return RunLoad(static_cast<uint16_t>(std::atoi(argv[2])),
                   static_cast<size_t>(std::atol(argv[3])),
                   static_cast<uint64_t>(std::atoll(argv[4])));
  }
  if (argc >= 2 && std::strcmp(argv[1], "--promote") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: bench_net --promote PORT\n");
      return 2;
    }
    return RunPromote(static_cast<uint16_t>(std::atoi(argv[2])));
  }
  ParseBenchFlags(argc, argv);

  char exe[4096];
  const ssize_t exe_len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (exe_len <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 1;
  }
  exe[exe_len] = '\0';

  // The shared leader: durable store + service + wire server.
  Database db;
  Status created = db.Create("Boxes", BoxRelation(kDataBoxes, 7));
  if (!created.ok()) {
    std::fprintf(stderr, "setup: %s\n", created.ToString().c_str());
    return 1;
  }
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  if (!store.ok()) {
    std::fprintf(stderr, "setup: %s\n", store.status().ToString().c_str());
    return 1;
  }
  Status committed = (*store)->CommitCatalog(db);
  if (!committed.ok()) {
    std::fprintf(stderr, "setup: %s\n", committed.ToString().c_str());
    return 1;
  }
  service::ServiceOptions options;
  options.num_workers = 4;
  options.disk = &disk;
  options.store = store->get();
  service::QueryService service(&db, options);
  net::ServerOptions sopts;
  sopts.store = store->get();
  auto server = net::Server::Start(&service, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "setup: %s\n", server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();

  if (!JsonOutputEnabled()) {
    std::printf("bench_net: %zu queries/client over the wire, port %u\n",
                kQueriesPerClient, port);
  }
  for (int clients : {1, 2, 4, 8}) {
    const ScalingResult r = MeasureClients(exe, port, clients);
    if (!r.ok) return 1;
    EmitResult(kBench, "wire_qps", r.qps, "qps",
               {{"clients", static_cast<double>(clients)}});
    EmitResult(kBench, "wire_p99", r.p99_us, "us",
               {{"clients", static_cast<double>(clients)}});
  }

  const LagResult lag = MeasureReplicaLag(&service, port);
  if (!lag.ok) return 1;
  EmitResult(kBench, "replica_writes", static_cast<double>(lag.writes),
             "batches");
  EmitResult(kBench, "replica_batches_applied",
             static_cast<double>(lag.batches_applied), "batches");
  EmitResult(kBench, "replica_max_lag", static_cast<double>(lag.max_lag),
             "batches");
  EmitResult(kBench, "replica_mean_lag", lag.mean_lag, "batches");
  EmitResult(kBench, "replica_catchup", lag.catchup_ms, "ms");

  (*server)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace ccdb::bench

int main(int argc, char** argv) { return ccdb::bench::Main(argc, argv); }
