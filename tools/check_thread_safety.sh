#!/usr/bin/env bash
# Compile-fail checks for the static-soundness gates.
#
# Asserts that the enforcement actually enforces:
#   1. Discarding a [[nodiscard]] Status at a call site fails to compile
#      under -Werror=unused-result (any compiler).
#   2. (Clang only) A correctly locked use of the annotated wrappers in
#      src/util/mutex.h compiles clean under -Werror=thread-safety.
#   3. (Clang only) An off-lock access to a CCDB_GUARDED_BY field is a
#      compile error — so reverting an annotation or dropping a lock is a
#      build break, not a TSan roll of the dice.
#
# ctest registers the halves separately so a missing clang++ can never
# silently absorb the portable check:
#   check_nodiscard      part 1 only; always runs, never skips.
#   check_thread_safety  parts 2+3; without a clang++ on PATH it exits 77
#                        (SKIP_RETURN_CODE) with a loud SKIPPED banner, so
#                        the gap shows up in the ctest summary instead of
#                        passing green. CI runs a dedicated clang job
#                        (.github/workflows/ci.yml) where the skip is an
#                        error.
#
# Run directly from anywhere:
#   tools/check_thread_safety.sh [c++-compiler] [nodiscard|tsa|all]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cxx="${1:-${CXX:-c++}}"
mode="${2:-all}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

common_flags=(-std=c++20 -fsyntax-only -I "$repo_root/src")

fail() { echo "check_thread_safety: FAIL: $*" >&2; exit 1; }

# --- 1. [[nodiscard]] Status discipline (any compiler) ---------------------

if [[ "$mode" == "nodiscard" || "$mode" == "all" ]]; then

cat > "$tmpdir/discard.cc" <<'EOF'
#include "util/status.h"
ccdb::Status Fallible() { return ccdb::Status::OK(); }
ccdb::Result<int> FallibleValue() { return 7; }
void Caller() {
  Fallible();       // discarded Status: must not compile
  FallibleValue();  // discarded Result: must not compile
}
EOF
if "$cxx" "${common_flags[@]}" -Werror=unused-result "$tmpdir/discard.cc" \
    2> "$tmpdir/discard.err"; then
  fail "a discarded Status/Result compiled under -Werror=unused-result"
fi
grep -q "unused-result\|nodiscard" "$tmpdir/discard.err" ||
  fail "discard snippet failed for the wrong reason: $(cat "$tmpdir/discard.err")"

cat > "$tmpdir/ignore.cc" <<'EOF'
#include "util/status.h"
ccdb::Status Fallible() { return ccdb::Status::OK(); }
void Caller() { ccdb::IgnoreError(Fallible()); }  // sanctioned discard
EOF
"$cxx" "${common_flags[@]}" -Werror=unused-result "$tmpdir/ignore.cc" ||
  fail "IgnoreError() did not compile — the sanctioned escape hatch is broken"

echo "ok: discarded Status is a build break; IgnoreError compiles ($cxx)"

fi  # nodiscard

[[ "$mode" == "nodiscard" ]] && exit 0

# --- 2+3. Clang Thread Safety Analysis -------------------------------------

clang_cxx=""
for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    clang_cxx="$candidate"
    break
  fi
done
if [[ -z "$clang_cxx" ]]; then
  echo "==================================================================" >&2
  echo "SKIPPED: check_thread_safety — no clang++ on PATH." >&2
  echo "The Clang Thread Safety Analysis gates (off-lock GUARDED_BY access" >&2
  echo "and unlocked REQUIRES calls must not compile) DID NOT RUN here." >&2
  echo "They are enforced by the clang job in .github/workflows/ci.yml;" >&2
  echo "locally, install clang or rely on a CCDB_DEADLOCK_DETECT build," >&2
  echo "whose runtime AssertHeld checks cover the REQUIRES contracts." >&2
  echo "==================================================================" >&2
  exit 77
fi

tsa_flags=(-Wthread-safety -Werror=thread-safety)

cat > "$tmpdir/locked.cc" <<'EOF'
#include "util/mutex.h"
class Good {
 public:
  void Bump() {
    ccdb::MutexLock lock(mu_);
    ++counter_;
  }
  int Read() const {
    ccdb::ReaderLock lock(rw_);
    return shared_;
  }
  void Publish(int v) {
    ccdb::WriterLock lock(rw_);
    shared_ = v;
  }

 private:
  ccdb::Mutex mu_;
  int counter_ CCDB_GUARDED_BY(mu_) = 0;
  mutable ccdb::SharedMutex rw_;
  int shared_ CCDB_GUARDED_BY(rw_) = 0;
};
EOF
"$clang_cxx" "${common_flags[@]}" "${tsa_flags[@]}" "$tmpdir/locked.cc" ||
  fail "correctly locked wrapper usage did not compile under $clang_cxx"

cat > "$tmpdir/offlock.cc" <<'EOF'
#include "util/mutex.h"
class Bad {
 public:
  void Bump() { ++counter_; }  // off-lock write: must not compile

 private:
  ccdb::Mutex mu_;
  int counter_ CCDB_GUARDED_BY(mu_) = 0;
};
EOF
if "$clang_cxx" "${common_flags[@]}" "${tsa_flags[@]}" "$tmpdir/offlock.cc" \
    2> "$tmpdir/offlock.err"; then
  fail "an off-lock GUARDED_BY access compiled — the analysis is not enforcing"
fi
grep -q "thread-safety" "$tmpdir/offlock.err" ||
  fail "off-lock snippet failed for the wrong reason: $(cat "$tmpdir/offlock.err")"

cat > "$tmpdir/requires.cc" <<'EOF'
#include "util/mutex.h"
class Bad {
 public:
  void Outer() { Inner(); }  // calling REQUIRES method without the lock

 private:
  void Inner() CCDB_REQUIRES(mu_) {}
  ccdb::Mutex mu_;
};
EOF
if "$clang_cxx" "${common_flags[@]}" "${tsa_flags[@]}" "$tmpdir/requires.cc" \
    2> /dev/null; then
  fail "calling a REQUIRES-annotated method without the lock compiled"
fi

echo "ok: off-lock access and unlocked REQUIRES calls are build breaks ($clang_cxx)"
