#!/usr/bin/env bash
# Builds and runs the test suite under each sanitizer in sequence:
# AddressSanitizer, ThreadSanitizer, UndefinedBehaviorSanitizer.
#
# Each configuration gets its own build directory (build-asan/,
# build-tsan/, build-ubsan/) so incremental reruns are cheap. On a
# single-core container each cold build takes several minutes; pass a
# subset to run fewer, e.g.:
#
#   tools/run_sanitizers.sh                 # all three
#   tools/run_sanitizers.sh undefined       # UBSan only
#   tools/run_sanitizers.sh thread address  # TSan then ASan
#
# CCDB_SANITIZE is the repo's CMake knob (see CMakeLists.txt); this
# script is just the loop around it. See DESIGN.md "Static analysis".
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("${@:-address thread undefined}")
# Re-split in case the default string form was used.
read -ra sanitizers <<< "${sanitizers[*]}"

jobs="$(nproc 2> /dev/null || echo 1)"
failed=()
skipped=()

for san in "${sanitizers[@]}"; do
  case "$san" in
    address | thread | undefined) ;;
    *)
      echo "run_sanitizers: unknown sanitizer '$san'" \
           "(want address|thread|undefined)" >&2
      exit 2
      ;;
  esac
  case "$san" in
    address) build_dir="$repo_root/build-asan" ;;
    thread) build_dir="$repo_root/build-tsan" ;;
    undefined) build_dir="$repo_root/build-ubsan" ;;
  esac
  echo "=== $san sanitizer: $build_dir ==="
  cmake -S "$repo_root" -B "$build_dir" -DCCDB_SANITIZE="$san" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j "$jobs"
  ctest_log="$build_dir/ctest-sanitizer.log"
  if (cd "$build_dir" && ctest --output-on-failure -j "$jobs") \
      | tee "$ctest_log"; then
    echo "=== $san: PASS ==="
  else
    echo "=== $san: FAIL ===" >&2
    failed+=("$san")
  fi
  # A skipped test is a gate that did not run — surface it, don't let a
  # green summary imply it did (e.g. check_thread_safety without clang).
  skips="$(grep -E '\*\*\*Skipped' "$ctest_log" | sed -E 's/^ *[0-9/]+ +Test +#[0-9]+: +([^ ]+).*/\1/' || true)"
  if [[ -n "$skips" ]]; then
    echo "=== $san: SKIPPED gates (DID NOT RUN): " $skips "===" >&2
    skipped+=("$san:" $skips)
  fi
done

if ((${#failed[@]})); then
  echo "run_sanitizers: failed: ${failed[*]}" >&2
  exit 1
fi
if ((${#skipped[@]})); then
  echo "run_sanitizers: all ran clean, but some gates SKIPPED:" \
       "${skipped[*]}" >&2
  echo "run_sanitizers: see the banners above for what did not run." >&2
fi
echo "run_sanitizers: all clean (${sanitizers[*]})"
