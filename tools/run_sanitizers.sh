#!/usr/bin/env bash
# Builds and runs the test suite under each sanitizer in sequence:
# AddressSanitizer, ThreadSanitizer, UndefinedBehaviorSanitizer.
#
# Each configuration gets its own build directory (build-asan/,
# build-tsan/, build-ubsan/) so incremental reruns are cheap. On a
# single-core container each cold build takes several minutes; pass a
# subset to run fewer, e.g.:
#
#   tools/run_sanitizers.sh                 # all three
#   tools/run_sanitizers.sh undefined       # UBSan only
#   tools/run_sanitizers.sh thread address  # TSan then ASan
#
# CCDB_SANITIZE is the repo's CMake knob (see CMakeLists.txt); this
# script is just the loop around it. See DESIGN.md "Static analysis".
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("${@:-address thread undefined}")
# Re-split in case the default string form was used.
read -ra sanitizers <<< "${sanitizers[*]}"

jobs="$(nproc 2> /dev/null || echo 1)"
failed=()

for san in "${sanitizers[@]}"; do
  case "$san" in
    address | thread | undefined) ;;
    *)
      echo "run_sanitizers: unknown sanitizer '$san'" \
           "(want address|thread|undefined)" >&2
      exit 2
      ;;
  esac
  case "$san" in
    address) build_dir="$repo_root/build-asan" ;;
    thread) build_dir="$repo_root/build-tsan" ;;
    undefined) build_dir="$repo_root/build-ubsan" ;;
  esac
  echo "=== $san sanitizer: $build_dir ==="
  cmake -S "$repo_root" -B "$build_dir" -DCCDB_SANITIZE="$san" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j "$jobs"
  if (cd "$build_dir" && ctest --output-on-failure -j "$jobs"); then
    echo "=== $san: PASS ==="
  else
    echo "=== $san: FAIL ===" >&2
    failed+=("$san")
  fi
done

if ((${#failed[@]})); then
  echo "run_sanitizers: failed: ${failed[*]}" >&2
  exit 1
fi
echo "run_sanitizers: all clean (${sanitizers[*]})"
