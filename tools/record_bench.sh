#!/usr/bin/env bash
# Records the per-PR benchmark trajectory: runs the JSON-emitting benches
# and writes one BENCH_<name>.json (one JSON object per line) at the repo
# root. Run from anywhere after a build:
#   tools/record_bench.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

benches=(service wal trace governance net mvcc obs failover)

# Preflight every binary before running any, so a missing one fails the
# whole recording instead of leaving a partial set of BENCH_*.json files.
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/bench_$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first (cmake --build $build_dir); no JSON written" >&2
    exit 1
  fi
done

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/bench_$bench"
  "$bin" --json > "$repo_root/BENCH_$bench.json"
  echo "wrote BENCH_$bench.json ($(wc -l < "$repo_root/BENCH_$bench.json") results)"
done
