#!/usr/bin/env bash
# Records the per-PR benchmark trajectory: runs the JSON-emitting benches
# and writes one BENCH_<name>.json (one JSON object per line) at the repo
# root. Run from anywhere after a build:
#   tools/record_bench.sh [build-dir] [lockgraph-build-dir]
#
# BENCH_lockgraph.json is special: the per-acquisition hook costs only
# exist in a -DCCDB_DEADLOCK_DETECT=ON build, so it is recorded from the
# second build dir (default build-lockgraph/) when one exists, and
# skipped with a notice otherwise. Everything else comes from the default
# build, where the detector is compiled out.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
lockgraph_build_dir="${2:-$repo_root/build-lockgraph}"

benches=(service wal trace governance net mvcc obs failover)

# Preflight every binary before running any, so a missing one fails the
# whole recording instead of leaving a partial set of BENCH_*.json files.
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/bench_$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first (cmake --build $build_dir); no JSON written" >&2
    exit 1
  fi
done

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/bench_$bench"
  "$bin" --json > "$repo_root/BENCH_$bench.json"
  echo "wrote BENCH_$bench.json ($(wc -l < "$repo_root/BENCH_$bench.json") results)"
done

lockgraph_bin="$lockgraph_build_dir/bench/bench_lockgraph"
if [[ -x "$lockgraph_bin" ]]; then
  "$lockgraph_bin" --json > "$repo_root/BENCH_lockgraph.json"
  echo "wrote BENCH_lockgraph.json ($(wc -l < "$repo_root/BENCH_lockgraph.json") results)"
else
  echo "skipped BENCH_lockgraph.json — no $lockgraph_bin" >&2
  echo "(configure with: cmake -B build-lockgraph -S . -DCCDB_DEADLOCK_DETECT=ON)" >&2
fi
