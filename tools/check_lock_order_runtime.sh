#!/usr/bin/env bash
# Runtime half of the lock-order cross-check (ctest: `lock_order_runtime`,
# registered only in -DCCDB_DEADLOCK_DETECT=ON builds as a FIXTURES_CLEANUP
# test, so it runs after the instrumented suite has written its
# lockgraph.*.json dumps into $1).
#
# Every acquisition-order edge the detector observed must lie within the
# transitive closure of the DAG declared in the source annotations —
# tools/lock_order_lint.py --runtime-dir does the comparison. On success
# the dumps are cleared so the next ctest run starts fresh; on failure
# they are kept for inspection (each undeclared edge is reported with its
# first witness hold-stack).
#
# Usage: check_lock_order_runtime.sh <dump-dir>
set -u

here="$(cd "$(dirname "$0")" && pwd)"
dir="${1:?usage: check_lock_order_runtime.sh <dump-dir>}"

if ! compgen -G "$dir/lockgraph.*.json" > /dev/null; then
  echo "check_lock_order_runtime: no dumps in $dir — run the suite via" >&2
  echo "ctest (the dump dir is armed per-test) before the cross-check." >&2
  exit 1
fi

if python3 "$here/lock_order_lint.py" --runtime-dir "$dir"; then
  rm -f "$dir"/lockgraph.*.json
  exit 0
fi
echo "check_lock_order_runtime: dumps kept in $dir for inspection" >&2
exit 1
