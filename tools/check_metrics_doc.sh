#!/usr/bin/env bash
# Lint: every metric name declared in src/obs/metric_names.h must be
# documented in DESIGN.md (the "Observability" section's metric table).
# Wired into ctest as `check_metrics_doc`; run directly from anywhere:
#   tools/check_metrics_doc.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
names_header="$repo_root/src/obs/metric_names.h"
design_doc="$repo_root/DESIGN.md"

[[ -f "$names_header" ]] || { echo "missing $names_header" >&2; exit 1; }
[[ -f "$design_doc" ]] || { echo "missing $design_doc" >&2; exit 1; }

# Every string literal assigned to a k-constant in the header is a
# canonical metric name.
names="$(sed -n 's/.*inline constexpr char k[A-Za-z0-9]*\[\] = "\([^"]*\)".*/\1/p' \
  "$names_header" | sort -u)"

if [[ -z "$names" ]]; then
  echo "no metric names parsed from $names_header — lint is broken" >&2
  exit 1
fi

# Canary: the governance family must exist (a rename or deletion in
# metric_names.h would otherwise silently shrink the linted set).
if ! grep -q '^governance\.' <<< "$names"; then
  echo "no governance.* metrics parsed from $names_header — family missing?" >&2
  exit 1
fi

missing=0
while IFS= read -r name; do
  if ! grep -qF "\`$name\`" "$design_doc"; then
    echo "undocumented metric: $name (add it to DESIGN.md's Observability table)" >&2
    missing=1
  fi
done <<< "$names"

if [[ "$missing" -ne 0 ]]; then
  exit 1
fi
count="$(wc -l <<< "$names")"
echo "ok: $count metric names all documented in DESIGN.md"
