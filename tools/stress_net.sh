#!/usr/bin/env bash
# Multi-process network stress (wired into ctest as `stress_net`).
#
# Boots a real ccdb_serve leader and a WAL-shipping ccdb_serve replica as
# separate daemons on ephemeral ports, populates the leader over the wire,
# waits for the replica to serve the replicated relation, then hammers
# BOTH daemons with concurrent bench_net --client processes. When curl is
# available the daemons also get --status-port listeners that are scraped
# (/metrics + /healthz) continuously DURING the storm — an HTTP scrape
# must never fail or block while the query path is saturated — and the
# replica's /healthz must report converged lag once the storm ends. Then
# the failover phase: the leader is killed, the replica is promoted over
# the wire (bench_net --promote), and the promoted daemon must accept
# writes and serve queries under its new term. Fails on any client error,
# a scrape error, non-converging lag, a failed promotion, a daemon that
# dies, or (via the hard KILL timeout) a hang anywhere in the stack.
#
# usage: stress_net.sh <ccdb_serve-binary> <bench_net-binary>

set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <ccdb_serve-binary> <bench_net-binary>" >&2
  exit 2
fi

# Hard stop: re-exec under `timeout --signal=KILL` so a wedged daemon or a
# client stuck in a blocking read fails the test instead of hanging ctest.
if [[ -z "${STRESS_NET_INNER:-}" ]] && command -v timeout >/dev/null 2>&1; then
  STRESS_NET_INNER=1 exec timeout --signal=KILL 300 "$0" "$@"
fi

serve_bin=$1
bench_bin=$2
workdir=$(mktemp -d)
daemon_pids=()

cleanup() {
  for pid in "${daemon_pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "stress_net: $1" >&2
  shift
  for log in "$@"; do
    echo "--- $log ---" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

# Polls a daemon log for the "listening on port N" line; prints the port.
wait_port() {
  local log=$1 port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' "$log" |
           head -n 1)
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  fail "daemon did not come up" "$log"
}

# Same, for the HTTP status listener's "status on port N" line.
wait_status_port() {
  local log=$1 port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*status on port \([0-9][0-9]*\).*/\1/p' "$log" |
           head -n 1)
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    sleep 0.1
  done
  fail "status listener did not come up" "$log"
}

# Status scrapes need an HTTP client; without one the storm still runs,
# just unscraped.
have_curl=0
command -v curl >/dev/null 2>&1 && have_curl=1

leader_log="$workdir/leader.log"
replica_log="$workdir/replica.log"

"$serve_bin" --port 0 --status-port 0 </dev/null >"$leader_log" 2>&1 &
daemon_pids+=($!)
leader_port=$(wait_port "$leader_log")
leader_status_port=$(wait_status_port "$leader_log")
echo "stress_net: leader on port $leader_port (status $leader_status_port)"

"$serve_bin" --port 0 --status-port 0 \
  --replica-of "127.0.0.1:$leader_port" \
  </dev/null >"$replica_log" 2>&1 &
daemon_pids+=($!)
replica_port=$(wait_port "$replica_log")
replica_status_port=$(wait_status_port "$replica_log")
echo "stress_net: replica on port $replica_port (status $replica_status_port)"

# Populate the leader over the wire (LoadRelation commits through the WAL,
# so the write also ships to the replica).
"$bench_bin" --load "$leader_port" 200 7 ||
  fail "--load against the leader failed" "$leader_log"

# The replica applies the shipment on its own poll cadence; probe with a
# one-query client until the replicated relation is queryable.
replica_ready=0
for _ in $(seq 1 100); do
  if "$bench_bin" --client "$replica_port" 99 1 >/dev/null 2>&1; then
    replica_ready=1
    break
  fi
  sleep 0.1
done
[[ "$replica_ready" == 1 ]] ||
  fail "replica never served the replicated relation" \
       "$leader_log" "$replica_log"

# Continuous scrape loops: hit /metrics and /healthz on one daemon until
# the storm ends, recording the first failure. A scrape body must carry
# the exposition / health markers, not just return 200.
scrape_loop() {
  local port=$1 name=$2 body=""
  while [[ ! -e "$workdir/storm_done" ]]; do
    body=$(curl -sf --max-time 5 "http://127.0.0.1:$port/metrics") ||
      { echo "$name /metrics scrape failed" >>"$workdir/scrape_fail"; return; }
    grep -q '^# TYPE ccdb_queries_completed counter' <<<"$body" ||
      { echo "$name /metrics body missing exposition families" \
          >>"$workdir/scrape_fail"; return; }
    body=$(curl -sf --max-time 5 "http://127.0.0.1:$port/healthz") ||
      { echo "$name /healthz scrape failed" >>"$workdir/scrape_fail"; return; }
    grep -q '"status":"ok"' <<<"$body" ||
      { echo "$name /healthz not ok: $body" >>"$workdir/scrape_fail"; return; }
    sleep 0.05
  done
}

scrape_pids=()
if [[ "$have_curl" == 1 ]]; then
  scrape_loop "$leader_status_port" leader &
  scrape_pids+=($!)
  scrape_loop "$replica_status_port" replica &
  scrape_pids+=($!)
fi

# The storm: 4 clients on the leader and 2 on the replica, concurrently,
# 200 queries each over one connection apiece.
client_pids=()
for id in 0 1 2 3; do
  "$bench_bin" --client "$leader_port" "$id" 200 \
    >/dev/null 2>"$workdir/leader_client_$id.err" &
  client_pids+=($!)
done
for id in 4 5; do
  "$bench_bin" --client "$replica_port" "$id" 200 \
    >/dev/null 2>"$workdir/replica_client_$id.err" &
  client_pids+=($!)
done

status=0
for pid in "${client_pids[@]}"; do
  wait "$pid" || status=1
done
touch "$workdir/storm_done"
for pid in "${scrape_pids[@]}"; do
  wait "$pid" || true
done
if [[ "$status" != 0 ]]; then
  fail "a client run failed" "$workdir"/*.err "$leader_log" "$replica_log"
fi
if [[ -s "$workdir/scrape_fail" ]]; then
  fail "a status scrape failed during the storm" "$workdir/scrape_fail" \
       "$leader_log" "$replica_log"
fi

# After the storm the replica's lag must converge to zero (the workload
# is read-only, so "converge" means the bootstrap shipment is applied and
# /healthz agrees with the leader's WAL position).
if [[ "$have_curl" == 1 ]]; then
  lag_ok=0
  for _ in $(seq 1 100); do
    health=$(curl -sf --max-time 5 \
               "http://127.0.0.1:$replica_status_port/healthz" || true)
    if grep -q '"role":"replica"' <<<"$health" &&
       grep -q '"caught_up":true' <<<"$health"; then
      lag_ok=1
      break
    fi
    sleep 0.1
  done
  [[ "$lag_ok" == 1 ]] ||
    fail "replica lag never converged: $health" "$replica_log"
fi

# Both daemons must have survived the storm.
for pid in "${daemon_pids[@]}"; do
  kill -0 "$pid" 2>/dev/null ||
    fail "a daemon died during the storm" "$leader_log" "$replica_log"
done

# --- Failover phase: kill the leader, promote the replica, verify writes ---

leader_pid=${daemon_pids[0]}
replica_pid=${daemon_pids[1]}
kill "$leader_pid" 2>/dev/null || true
wait "$leader_pid" 2>/dev/null || true
echo "stress_net: leader killed, promoting replica"

"$bench_bin" --promote "$replica_port" ||
  fail "promotion of the replica failed" "$replica_log"

# The promoted daemon now owns the timeline: writes must land (LoadRelation
# refreshes "Boxes") and reads must keep working on the same port.
"$bench_bin" --load "$replica_port" 120 11 ||
  fail "--load against the promoted replica failed" "$replica_log"
"$bench_bin" --client "$replica_port" 7 50 >/dev/null ||
  fail "queries against the promoted replica failed" "$replica_log"

# /healthz must have flipped the advertised role to leader.
if [[ "$have_curl" == 1 ]]; then
  role_ok=0
  for _ in $(seq 1 50); do
    health=$(curl -sf --max-time 5 \
               "http://127.0.0.1:$replica_status_port/healthz" || true)
    if grep -q '"role":"leader"' <<<"$health"; then
      role_ok=1
      break
    fi
    sleep 0.1
  done
  [[ "$role_ok" == 1 ]] ||
    fail "promoted replica still advertises the replica role: $health" \
         "$replica_log"
fi

# The promoted daemon must have survived its promotion and the writes.
kill -0 "$replica_pid" 2>/dev/null ||
  fail "the promoted replica died" "$replica_log"

if [[ "$have_curl" == 1 ]]; then
  echo "stress_net: ok (6 clients x 200 queries across leader + replica," \
       "scraped throughout; leader killed, replica promoted + wrote)"
else
  echo "stress_net: ok (6 clients x 200 queries across leader + replica;" \
       "curl missing, status scrapes skipped; leader killed, replica" \
       "promoted + wrote)"
fi
