#!/usr/bin/env python3
"""Lock-order DAG linter (ctest: `lock_order_lint`).

The declared half of the deadlock story (the dynamic half is the runtime
detector in src/util/lock_graph.*): every named `ccdb::Mutex` /
`SharedMutex` carries its lock-graph name as a constructor argument, and
its declaration may carry ordering annotations —

  CCDB_ACQUIRED_BEFORE(member_) / CCDB_ACQUIRED_AFTER(member_)
      same-class edges, by member name (real Clang attributes);
  CCDB_LOCK_ORDER("name", ...)
      cross-class edges, by registered name (a no-op macro only this
      lint reads — Clang attributes cannot reference another class's
      private member).

This lint parses those declarations out of src/, builds the declared
acquisition-order DAG, and fails on:

  * a cycle in the declared DAG (the declarations themselves promise a
    deadlock);
  * a CCDB_LOCK_ORDER target that no mutex registers (typo or a rename
    that forgot its edges);
  * with --runtime-dir DIR: an edge observed by the runtime detector
    (lockgraph.*.json dumps, written by CCDB_DEADLOCK_DETECT builds when
    CCDB_LOCK_GRAPH_DUMP_DIR is set) that is not within the transitive
    closure of the declared DAG — an undeclared ordering the code
    actually exercises.  The `test.` and `bench.` name prefixes are
    reserved for synthetic fixtures (the detector's own unit tests and
    microbenches); edges touching them are ignored here, and src/ must
    not register locks under them;
  * with --check-doc: a declared edge missing from DESIGN.md's
    *Lock order* table (kept in sync like the metrics table; regenerate
    rows with --print-doc).

Run from anywhere:  tools/lock_order_lint.py [--runtime-dir DIR]
                    [--check-doc | --print-doc]      (exit 0 = clean).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DESIGN = REPO / "DESIGN.md"

# Files that define the detector/wrappers themselves, not lock users.
EXCLUDED = (SRC / "util" / "mutex.h", SRC / "util" / "lock_graph.cc",
            SRC / "util" / "lock_graph.h")

# Name prefixes reserved for synthetic fixtures (the detector's own unit
# tests and microbenches). src/ must not register locks under them, and
# runtime edges touching them are outside the declared-DAG cross-check.
SYNTHETIC_PREFIXES = ("test.", "bench.")


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, preserving line structure and string
    literals (registered names live in strings)."""
    out: list[str] = []
    i, n = 0, len(text)
    in_str: str | None = None
    while i < n:
        c = text[i]
        if in_str:
            out.append(c)
            if c == "\\" and i + 1 < n:
                out.append(text[i + 1])
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
            i = j + 2
        elif c in "\"'":
            in_str = c
            out.append(c)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# A named-mutex member declaration: identifier, optional annotation
# macros (possibly spanning lines), then the registered-name initializer.
DECL_RE = re.compile(
    r"(?:mutable\s+)?(?:ccdb::)?(?:Mutex|SharedMutex)\s+(\w+)\s*"
    r"((?:CCDB_\w+\s*\([^)]*\)\s*)*)"
    r"\{\s*\"([^\"]+)\"\s*\}\s*;",
    re.DOTALL)
ANNOT_RE = re.compile(r"CCDB_(\w+)\s*\(([^)]*)\)", re.DOTALL)


def parse_declarations(files):
    """Returns (names, edges): the set of registered lock names and the
    declared direct edges {(from_name, to_name): where}."""
    names: dict[str, str] = {}   # registered name -> file:line of one decl
    edges: dict[tuple[str, str], str] = {}
    problems: list[str] = []
    for path in files:
        clean = strip_comments(path.read_text())
        rel = path.relative_to(REPO)
        # member name -> registered name, for resolving same-class edges.
        members = {m.group(1): m.group(3) for m in DECL_RE.finditer(clean)}
        for m in DECL_RE.finditer(clean):
            member, annots, reg = m.group(1), m.group(2), m.group(3)
            lineno = clean.count("\n", 0, m.start()) + 1
            where = f"{rel}:{lineno}"
            if reg.startswith(SYNTHETIC_PREFIXES):
                problems.append(
                    f"{where}: registered lock name \"{reg}\" uses a "
                    "prefix reserved for synthetic test/bench fixtures")
                continue
            names.setdefault(reg, where)
            for a in ANNOT_RE.finditer(annots):
                kind, body = a.group(1), a.group(2)
                if kind == "LOCK_ORDER":
                    for target in re.findall(r"\"([^\"]+)\"", body):
                        edges[(reg, target)] = where
                elif kind in ("ACQUIRED_BEFORE", "ACQUIRED_AFTER"):
                    for target_member in re.findall(r"\w+", body):
                        target = members.get(target_member)
                        if target is None:
                            problems.append(
                                f"{where}: CCDB_{kind}({target_member}) "
                                "names a member with no registered "
                                "lock-graph name in this file")
                            continue
                        if kind == "ACQUIRED_BEFORE":
                            edges[(reg, target)] = where
                        else:
                            edges[(target, reg)] = where
    return names, edges, problems


def find_cycle(edges):
    """Returns a cycle as a list of names, or None."""
    adj: dict[str, list[str]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []

    def dfs(u: str):
        color[u] = GRAY
        stack.append(u)
        for v in adj.get(u, []):
            if color.get(v, WHITE) == GRAY:
                return stack[stack.index(v):] + [v]
            if color.get(v, WHITE) == WHITE:
                found = dfs(v)
                if found:
                    return found
        stack.pop()
        color[u] = BLACK
        return None

    for u in list(adj):
        if color.get(u, WHITE) == WHITE:
            found = dfs(u)
            if found:
                return found
    return None


def transitive_closure(edges):
    reach: dict[str, set[str]] = {}
    adj: dict[str, set[str]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)

    def expand(u: str) -> set[str]:
        if u in reach:
            return reach[u]
        reach[u] = set()  # cycle guard; find_cycle runs first anyway
        out: set[str] = set()
        for v in adj.get(u, ()):
            out.add(v)
            out |= expand(v)
        reach[u] = out
        return out

    for u in list(adj):
        expand(u)
    return reach


def load_runtime_edges(dump_dir: Path):
    """Aggregates non-try-only observed edges across all dumps, keeping
    one witness stack per edge."""
    observed: dict[tuple[str, str], dict] = {}
    dumps = sorted(dump_dir.glob("lockgraph.*.json"))
    for f in dumps:
        try:
            d = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"lock_order_lint: unreadable dump {f}: {err}",
                  file=sys.stderr)
            continue
        for e in d.get("edges", []):
            if e.get("try_only"):
                continue  # TryLock never blocks; ordering is advisory
            if (e["from"].startswith(SYNTHETIC_PREFIXES)
                    or e["to"].startswith(SYNTHETIC_PREFIXES)):
                continue  # synthetic fixture locks, not src/ locks
            key = (e["from"], e["to"])
            if key not in observed:
                observed[key] = e
    return observed, len(dumps)


def doc_edge(a: str, b: str) -> str:
    return f"`{a}` → `{b}`"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--runtime-dir", type=Path, default=None,
                    help="directory of lockgraph.*.json runtime dumps to "
                         "cross-check against the declared DAG")
    ap.add_argument("--check-doc", action="store_true",
                    help="verify every declared edge appears in DESIGN.md")
    ap.add_argument("--print-doc", action="store_true",
                    help="print the DESIGN.md Lock-order table rows")
    args = ap.parse_args()

    files = sorted(p for p in SRC.rglob("*")
                   if p.suffix in (".h", ".cc") and p.is_file()
                   and p not in EXCLUDED)
    names, edges, problems = parse_declarations(files)
    errors: list[str] = list(problems)

    if not names:
        errors.append("no registered lock names parsed from src/ — lint "
                      "is broken or the naming convention changed")
    for (a, b), where in sorted(edges.items()):
        if b not in names:
            errors.append(f"{where}: lock-order edge {a} -> {b} targets "
                          "an unregistered lock name (typo, or a rename "
                          "left stale edges)")
        if a == b:
            errors.append(f"{where}: self-edge {a} -> {a} — a lock rank "
                          "can never be acquired while already held")

    cycle = find_cycle(edges)
    if cycle:
        errors.append("declared lock-order cycle: " + " -> ".join(cycle))

    if args.print_doc:
        for (a, b) in sorted(edges):
            print(f"| {doc_edge(a, b)} |")
        return 0

    if args.check_doc:
        design_text = DESIGN.read_text() if DESIGN.is_file() else ""
        for (a, b), where in sorted(edges.items()):
            if doc_edge(a, b) not in design_text:
                errors.append(
                    f"{where}: declared edge {doc_edge(a, b)} missing from "
                    "DESIGN.md's Lock order table — regenerate with "
                    "tools/lock_order_lint.py --print-doc")

    if args.runtime_dir is not None and not cycle:
        observed, ndumps = load_runtime_edges(args.runtime_dir)
        if ndumps == 0:
            errors.append(f"--runtime-dir {args.runtime_dir}: no "
                          "lockgraph.*.json dumps found — was the suite "
                          "run with CCDB_LOCK_GRAPH_DUMP_DIR set?")
        closure = transitive_closure(edges)
        for (a, b), e in sorted(observed.items()):
            if b in closure.get(a, ()):
                continue
            stack = " ; ".join(e.get("witness_stack", []))
            errors.append(
                f"observed-but-undeclared edge {a} -> {b} "
                f"(count={e.get('count')}; first witness hold-stack: "
                f"[{stack}]) — declare it with CCDB_LOCK_ORDER / "
                "CCDB_ACQUIRED_BEFORE, or fix the acquisition order")
        if not errors:
            print(f"lock_order_lint: runtime cross-check ok "
                  f"({ndumps} dumps, {len(observed)} observed edges, "
                  f"all within the declared closure)")

    if errors:
        for e in errors:
            print(f"[lock-order] {e}", file=sys.stderr)
        print(f"lock_order_lint: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lock_order_lint: ok ({len(names)} named locks, "
          f"{len(edges)} declared edges, acyclic)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
