#!/usr/bin/env python3
"""CCDB project-invariant linter (wired into ctest as `ccdb_lint`).

Enforces the repo's documented contracts that the compiler cannot:

  no-throw        src/ never throws or aborts — library boundaries return
                  Status/Result (the worker exception *barrier* in
                  query_service.cc may catch, but nothing in src/ raises).
  raw-mutex       all locking in src/ goes through the annotated wrappers
                  in src/util/mutex.h (raw std::mutex cannot carry Clang
                  thread-safety capabilities).
  void-discard    a Status-returning call is never silenced with a
                  `(void)` cast — intentional discards use IgnoreError()
                  so they stay greppable. (`(void)identifier;` for unused
                  locals is fine.)
  metrics         every name in src/obs/metric_names.h is (a) emitted
                  somewhere in src/, (b) documented in DESIGN.md's
                  Observability table, and (c) listed in AllMetricNames()
                  — the list the Prometheus-exposition coverage test
                  iterates, so a name missing from it would silently
                  escape the /metrics surface. Subsumes the retired
                  check_metrics_doc.sh, including its governance-family
                  canary.
  no-iostream     library code never writes to std::cout/std::cerr or
                  C stdio console streams (the shell and tools own the
                  terminal; the TraceSink writes to a caller-owned
                  std::ostream).
  governance      every CQA operator function that materializes tuples
                  (calls .Insert( inside a loop) polls a governance
                  check-point, so deadlines/cancellation can always
                  unwind and budget trips can truncate soundly.
  net-socket      raw socket syscalls (socket/bind/listen/accept/connect/
                  send/recv/setsockopt/getaddrinfo/...) appear only in
                  src/util/socket.cc — everything else speaks through the
                  Status-returning Socket/Listener wrappers, so error
                  handling, SIGPIPE suppression, and shutdown semantics
                  live in exactly one place.
  mvcc-publish    direct catalog mutation (`CatalogEdit`, `PublishSnapshot`)
                  appears only in src/data/snapshot.{h,cc} and the query
                  service's commit path — every other layer reads pinned
                  snapshots or writes through the service's transactional
                  API, so conflict detection and WAL-before-visibility
                  cannot be bypassed.
  net-retries     src/net/ never calls a raw sleep primitive
                  (std::this_thread::sleep_for, usleep, nanosleep, ...) —
                  waiting goes through ccdb::SleepForMs under a Backoff
                  schedule (util/backoff.h) — and never spins an
                  unbounded retry loop: a `while (true)` / `for (;;)`
                  that sleeps-and-retries must be bounded by a deadline,
                  a stop flag, or a Backoff, so a dead peer produces a
                  typed kUnavailable instead of a hang.
  lock-discipline every `ccdb::Mutex` / `SharedMutex` member either
                  guards at least one `CCDB_GUARDED_BY` field in its
                  file or carries a `protocol-lock:` comment saying what
                  non-field invariant it serializes — an unexplained
                  mutex is either dead weight or an undeclared contract.
                  Also: no bare TryLock spin loops — a loop that retries
                  TryLock must be bounded by a deadline, stop flag, or
                  Backoff (spinning on a held lock is a latent livelock).

Run from anywhere:  tools/ccdb_lint.py  (exit 0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

violations: list[str] = []


def report(rule: str, path: Path, lineno: int, message: str) -> None:
    rel = path.relative_to(REPO)
    violations.append(f"[{rule}] {rel}:{lineno}: {message}")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so line numbers survive."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.extend(ch if ch == "\n" else " " for ch in text[i : j + 2])
            i = j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                    if i < n:
                        out.append(" " if text[i] != "\n" else "\n")
                        i += 1
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def src_files() -> list[Path]:
    return sorted(
        p for p in SRC.rglob("*") if p.suffix in (".h", ".cc") and p.is_file()
    )


# The deadlock detector's own implementation (see its file header): it
# cannot lock through the wrappers it instruments (raw std::mutex), and a
# detected cycle is by definition unreportable through Status — the whole
# point is to abort with both hold-stacks on stderr before the process
# deadlocks. Exempt from no-throw, raw-mutex, and no-iostream only.
LOCK_GRAPH_IMPL = SRC / "util" / "lock_graph.cc"


# --- Rule: no-throw ---------------------------------------------------------

THROW_RE = re.compile(r"\bthrow\b")
ABORT_RE = re.compile(r"\b(?:std::)?abort\s*\(|\bstd::terminate\s*\(|\bexit\s*\(")


def check_no_throw(path: Path, clean: str) -> None:
    if path == LOCK_GRAPH_IMPL:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        if THROW_RE.search(line):
            report("no-throw", path, lineno,
                   "`throw` in library code — return a Status instead "
                   "(only the worker exception barrier may *catch*)")
        if ABORT_RE.search(line):
            report("no-throw", path, lineno,
                   "process-killing call in library code — return a "
                   "Status instead")


# --- Rule: raw-mutex --------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)
MUTEX_WRAPPER = SRC / "util" / "mutex.h"


def check_raw_mutex(path: Path, clean: str) -> None:
    if path in (MUTEX_WRAPPER, LOCK_GRAPH_IMPL):
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = RAW_MUTEX_RE.search(line)
        if m:
            report("raw-mutex", path, lineno,
                   f"raw `{m.group(0)}` — use the annotated wrappers in "
                   "src/util/mutex.h (ccdb::Mutex, MutexLock, ...)")


# --- Rule: void-discard -----------------------------------------------------

VOID_CALL_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.\->]*\s*\(")


def check_void_discard(path: Path, clean: str) -> None:
    for lineno, line in enumerate(clean.splitlines(), 1):
        if VOID_CALL_RE.search(line):
            report("void-discard", path, lineno,
                   "`(void)` cast of a call expression — use "
                   "IgnoreError(...) from util/status.h so intentional "
                   "discards stay greppable")


# --- Rule: metrics ----------------------------------------------------------

METRIC_DECL_RE = re.compile(
    r"inline constexpr char (k[A-Za-z0-9]+)\[\] = \"([^\"]+)\"")


def check_metrics() -> None:
    names_header = SRC / "obs" / "metric_names.h"
    design = REPO / "DESIGN.md"
    if not names_header.is_file():
        violations.append("[metrics] missing src/obs/metric_names.h")
        return
    if not design.is_file():
        violations.append("[metrics] missing DESIGN.md")
        return
    decls = METRIC_DECL_RE.findall(names_header.read_text())
    if not decls:
        violations.append(
            "[metrics] no metric names parsed from metric_names.h — "
            "lint is broken or the header changed shape")
        return
    # Canary (from the retired check_metrics_doc.sh): a family rename or
    # deletion must not silently shrink the linted set.
    if not any(name.startswith("governance.") for _, name in decls):
        violations.append(
            "[metrics] no governance.* metrics in metric_names.h — "
            "family missing?")
    design_text = design.read_text()
    # The AllMetricNames() body — the list the exposition coverage test
    # registers and scrapes; a constant absent from it never reaches the
    # rendered-output assertion.
    header_text = names_header.read_text()
    all_names_m = re.search(
        r"AllMetricNames\(\)\s*\{\s*return\s*\{(.*?)\}\s*;\s*\}",
        header_text, re.DOTALL)
    all_names = set(re.findall(r"\bk[A-Za-z0-9]+\b", all_names_m.group(1))
                    ) if all_names_m else set()
    if not all_names:
        violations.append(
            "[metrics] could not parse AllMetricNames() from "
            "metric_names.h — lint is broken or the header changed shape")
    # Every usage of names::kConstant anywhere in src/ except the header.
    usage = "\n".join(
        p.read_text() for p in src_files() if p != names_header)
    for constant, name in decls:
        if not re.search(rf"\bnames::{constant}\b", usage):
            violations.append(
                f"[metrics] {constant} (\"{name}\") is declared but never "
                "emitted in src/ — dead metric or missed publication point")
        if f"`{name}`" not in design_text:
            violations.append(
                f"[metrics] undocumented metric: {name} — add it to "
                "DESIGN.md's Observability table")
        if all_names and constant not in all_names:
            violations.append(
                f"[metrics] {constant} (\"{name}\") is missing from "
                "AllMetricNames() — it would never be covered by the "
                "exposition test or scraped from /metrics")


# --- Rule: no-iostream ------------------------------------------------------

IOSTREAM_RE = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b|(?<![\w.])(?:printf|puts|putchar)\s*\(|"
    r"\bfprintf\s*\(\s*std(?:out|err)\b")


def check_no_iostream(path: Path, clean: str) -> None:
    if path == LOCK_GRAPH_IMPL:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        if IOSTREAM_RE.search(line):
            report("no-iostream", path, lineno,
                   "console write from library code — return data, or "
                   "take a caller-owned std::ostream")


# --- Rule: net-socket -------------------------------------------------------

# Raw socket-layer syscalls; the capitalized wrapper methods (SendAll,
# Accept, ...) never match. `(?:^|[^\w.>])` keeps `foo::connect(` (a
# namespaced method) out while still catching a global-namespace
# ` ::connect(`.
SOCKET_CALL_RE = re.compile(
    r"(?:^|[^\w.>])(?:::\s*)?"
    r"(socket|bind|listen|accept|accept4|connect|send|recv|sendto|"
    r"recvfrom|sendmsg|recvmsg|setsockopt|getsockopt|getaddrinfo|"
    r"freeaddrinfo|getsockname|getpeername|shutdown|inet_pton|inet_ntop|"
    r"htons|ntohs|htonl|ntohl)\s*\(")
SOCKET_IMPL = SRC / "util" / "socket.cc"


def check_net_socket(path: Path, clean: str) -> None:
    if path == SOCKET_IMPL:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = SOCKET_CALL_RE.search(line)
        if m:
            report("net-socket", path, lineno,
                   f"raw socket call `{m.group(1)}(` outside "
                   "src/util/socket.cc — go through the Socket/Listener "
                   "wrappers (src/util/socket.h)")


# --- Rule: mvcc-publish -----------------------------------------------------

# Direct mutable-catalog access: building a commit candidate or publishing
# one. Everything outside the allowlist goes through the service's write
# API (autocommit or BEGIN/COMMIT), which owns conflict detection and
# WAL-before-visibility ordering.
MVCC_TOKEN_RE = re.compile(r"\bCatalogEdit\b|\bPublishSnapshot\s*\(")
MVCC_ALLOWED = (
    SRC / "data" / "snapshot.h",
    SRC / "data" / "snapshot.cc",
    SRC / "service" / "query_service.h",
    SRC / "service" / "query_service.cc",
)


def check_mvcc_publish(path: Path, clean: str) -> None:
    if path in MVCC_ALLOWED:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        m = MVCC_TOKEN_RE.search(line)
        if m:
            report("mvcc-publish", path, lineno,
                   f"direct mutable-catalog access `{m.group(0)}` outside "
                   "the commit path — go through QueryService's "
                   "transactional write API")


# --- Rule: net-retries ------------------------------------------------------

# Raw sleep primitives: the network layer waits via ccdb::SleepForMs,
# normally under a Backoff schedule, so stress/chaos tests stay
# deterministic and every wait has one greppable implementation.
# (Lowercase match: ccdb::SleepForMs itself never triggers.)
RAW_SLEEP_RE = re.compile(
    r"\bstd::this_thread::sleep_(?:for|until)\b|"
    r"(?:^|[^\w.:>])(?:usleep|nanosleep|sleep)\s*\(")
INFINITE_LOOP_RE = re.compile(r"\bwhile\s*\(\s*true\s*\)|\bfor\s*\(\s*;\s*;\s*\)")
# Tokens that bound a retry/poll loop: a wall-clock deadline, the owner's
# stop flag, or a capped Backoff schedule.
LOOP_BOUND_TOKENS = ("deadline", "stop_", "backoff", "Backoff")
NET_DIR = SRC / "net"


def check_net_retries(path: Path, clean: str) -> None:
    if NET_DIR not in path.parents:
        return
    for lineno, line in enumerate(clean.splitlines(), 1):
        if RAW_SLEEP_RE.search(line):
            report("net-retries", path, lineno,
                   "raw sleep in src/net/ — wait via ccdb::SleepForMs "
                   "under a Backoff schedule (util/backoff.h)")
    for m in INFINITE_LOOP_RE.finditer(clean):
        brace = clean.find("{", m.end())
        if brace == -1:
            continue
        depth = 0
        k = brace
        while k < len(clean):
            if clean[k] == "{":
                depth += 1
            elif clean[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = clean[brace : k + 1]
        # An event loop blocks in I/O and exits on failure; a RETRY loop
        # waits (sleeps) and goes around again. Only the latter must be
        # bounded — an unbounded one hangs forever against a dead peer.
        if "SleepForMs" not in body:
            continue
        if not any(tok in body for tok in LOOP_BOUND_TOKENS):
            lineno = clean.count("\n", 0, m.start()) + 1
            report("net-retries", path, lineno,
                   "unbounded retry loop in src/net/ — bound it with a "
                   "deadline, a stop flag, or a Backoff schedule")


# --- Rule: lock-discipline --------------------------------------------------

# A Mutex/SharedMutex member declaration (annotation macros and the
# registered-name initializer may follow the identifier).
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:ccdb::)?(?:Mutex|SharedMutex)\s+(\w+)\s*[;{C\n]",
    re.MULTILINE)
# The justification marker for a mutex that guards a protocol rather than
# fields (e.g. commit ordering, whole-RPC serialization). Greppable.
PROTOCOL_LOCK_MARKER = "protocol-lock"
TRYLOCK_RE = re.compile(r"\bTryLock\s*\(")
LOOP_HEAD_RE = re.compile(r"\b(?:while|for)\s*\(")


def check_lock_discipline(path: Path, clean: str, raw: str) -> None:
    if path in (MUTEX_WRAPPER, LOCK_GRAPH_IMPL):
        return
    raw_lines = raw.splitlines()
    for m in MUTEX_MEMBER_RE.finditer(clean):
        name = m.group(1)
        # Anchor on the identifier, not the match start: `^\s*` swallows
        # preceding blank lines under MULTILINE.
        lineno = clean.count("\n", 0, m.start(1)) + 1
        if re.search(rf"GUARDED_BY\(\s*{re.escape(name)}\s*\)", clean):
            continue
        # No guarded field: the contiguous comment block directly above
        # the declaration must say what the lock serializes.
        justified = False
        i = lineno - 2  # 0-based index of the line above the declaration
        while i >= 0 and re.match(r"\s*(?://|///)", raw_lines[i]):
            if PROTOCOL_LOCK_MARKER in raw_lines[i]:
                justified = True
            i -= 1
        if not justified:
            report("lock-discipline", path, lineno,
                   f"mutex `{name}` guards no CCDB_GUARDED_BY field and "
                   "has no `protocol-lock:` comment above it — declare "
                   "what it protects or justify the protocol it "
                   "serializes")
    # Bare TryLock spin loops: a loop that goes around again on TryLock
    # failure must be bounded, or a held lock becomes a livelock.
    for m in LOOP_HEAD_RE.finditer(clean):
        # Brace-match the loop body (condition first, then body).
        depth = 0
        i = m.end() - 1
        while i < len(clean):
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        cond = clean[m.end() - 1 : i + 1]
        j = i + 1
        while j < len(clean) and clean[j] not in "{;":
            j += 1
        body = ""
        if j < len(clean) and clean[j] == "{":
            depth = 0
            k = j
            while k < len(clean):
                if clean[k] == "{":
                    depth += 1
                elif clean[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body = clean[j : k + 1]
        if not TRYLOCK_RE.search(cond + body):
            continue
        if not any(tok in body or tok in cond for tok in LOOP_BOUND_TOKENS):
            lineno = clean.count("\n", 0, m.start()) + 1
            report("lock-discipline", path, lineno,
                   "bare TryLock spin loop — bound it with a deadline, "
                   "stop flag, or Backoff schedule (or just Lock(): the "
                   "deadlock detector orders blocking acquisitions)")


# --- Rule: governance check-points ------------------------------------------

# Files whose tuple-materializing operator loops must poll governance.
GOVERNANCE_FILES = ("core/operators.cc", "core/spatial.cc")
FUNC_START_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?\b([A-Za-z_]\w*)\s*\($",
                           re.MULTILINE)


def function_bodies(clean: str):
    """Yields (name, start_line, body) for top-level function definitions
    (clang-format style: signature starts at column 0, body brace-matched)."""
    lines = clean.splitlines(keepends=True)
    text = "".join(lines)
    # A definition: identifier( at top level followed eventually by '{'.
    for m in re.finditer(r"^(?!\s)(?:[\w:&<>,*~\[\]]+\s+)+([A-Za-z_]\w*)\s*\(",
                         text, re.MULTILINE):
        name = m.group(1)
        # Find the opening brace of the body (skip the parameter list).
        depth = 0
        i = m.end() - 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        # After the parameter list: a body brace means a definition; a ';'
        # first means a declaration.
        j = i + 1
        while j < len(text) and text[j] not in "{;":
            j += 1
        if j >= len(text) or text[j] == ";":
            continue
        # Brace-match the body.
        depth = 0
        k = j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        start_line = text.count("\n", 0, m.start()) + 1
        yield name, start_line, text[j : k + 1]


GOV_TOKENS = ("CheckGovernance", "GovernanceTruncating", "GovernTuples")
# Tuple-materialization markers: direct Relation inserts, plus spatial.cc's
# EmitPair helper (its only writer of output tuples).
MATERIALIZE_RE = re.compile(r"(?:\.|->)Insert\(|\bEmitPair\(")


def check_governance() -> None:
    for rel in GOVERNANCE_FILES:
        path = SRC / rel
        if not path.is_file():
            violations.append(f"[governance] missing {path}")
            continue
        clean = strip_comments_and_strings(path.read_text())
        for name, lineno, body in function_bodies(clean):
            materializes = MATERIALIZE_RE.search(body)
            loops = re.search(r"\b(?:for|while)\s*\(", body)
            if not (materializes and loops):
                continue
            if not any(tok in body for tok in GOV_TOKENS):
                report("governance", path, lineno,
                       f"operator `{name}` materializes tuples in a loop "
                       "without a governance check-point "
                       "(obs::CheckGovernance / GovernanceTruncating)")


def main() -> int:
    files = src_files()
    if not files:
        print("ccdb_lint: no sources found under src/ — broken checkout?",
              file=sys.stderr)
        return 1
    for path in files:
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        check_no_throw(path, clean)
        check_raw_mutex(path, clean)
        check_void_discard(path, clean)
        check_no_iostream(path, clean)
        check_net_socket(path, clean)
        check_mvcc_publish(path, clean)
        check_net_retries(path, clean)
        check_lock_discipline(path, clean, raw)
    check_metrics()
    check_governance()

    if violations:
        for v in violations:
            print(v, file=sys.stderr)
        print(f"ccdb_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"ccdb_lint: ok ({len(files)} files, 10 rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
