#!/usr/bin/env bash
# Adversarial governance stress: runs the Fourier–Motzkin explosion query
# (an unselective self-join whose constraint count grows quadratically)
# under a 50 ms deadline, 100 times, via bench_governance --stress.
#
# Fails on:
#   - a hang (the whole loop is wrapped in a hard timeout),
#   - a crash or sanitizer report (non-zero exit),
#   - any run that does not return the typed kDeadlineExceeded,
#   - any trip that takes more than twice the deadline.
#
# Usage: tools/stress_governance.sh [path/to/bench_governance] [runs]
# ctest registers it with the built binary as argument 1.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bin="${1:-$repo_root/build/bench/bench_governance}"
runs="${2:-100}"

if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build first (cmake --build build)" >&2
  exit 1
fi

# 100 runs x a 100 ms worst-case bound each is ~10 s of real work; the
# 300 s ceiling only fires on a genuine hang (e.g. a check-point that an
# engine loop never reaches).
if command -v timeout > /dev/null; then
  timeout --signal=KILL 300 "$bin" --stress "$runs"
else
  "$bin" --stress "$runs"
fi
